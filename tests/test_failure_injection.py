"""Failure-injection tests: the engines must stay correct when components
are degraded — a bad predictor, a useless draft, extreme thresholds — and
the serving stack must stay correct when whole replicas misbehave: seeded
crashes, restarts, KV corruption, predictor anomalies, and slowdowns from
:mod:`repro.serving.faults`, driven through the router's failover path."""

import math

import numpy as np
import pytest

from repro.baselines import DenseEngine
from repro.config import SimDims, SpecEEConfig
from repro.core import PredictorBank, SpecEEEngine, make_scheduler
from repro.eval.harness import build_rig
from repro.hardware.ledger import Event
from repro.model.draft import Speculator
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM
from repro.serving import FaultInjector, FaultPlan, ReplicaHealth, poisson_trace
from repro.serving.faults import FAULT_PRESETS, ReplicaCrash

# Same asset-cache key as the other serving tests, so training happens once.
RIG_KWARGS = dict(train_prompts=6, train_tokens=30, predictor_hidden=128, epochs=10)
FLEET_KWARGS = dict(batch_capacity=4, kv_blocks=24, block_size=4,
                    chunk_prefill_tokens=16)


@pytest.fixture(scope="module")
def rig():
    return build_rig("llama2-7b", **RIG_KWARGS)


@pytest.fixture(scope="module")
def trace(rig):
    engine = rig.async_serving_engine(**FLEET_KWARGS)
    return poisson_trace(
        16, 30.0, rig.model.vocab_size, seed=7, slo_scale=4.0,
        per_token_s=engine.latency.full_depth_token_time(),
        priority_levels=2,
    )


@pytest.fixture(scope="module")
def fleet_baseline(rig, trace):
    """Fault-free two-replica run: the token-identity reference."""
    return rig.router_fleet(2, **FLEET_KWARGS).run(trace)


def fresh(seed=77, transient_rate=None):
    profile = get_profile("llama2-7b")
    if transient_rate is not None:
        profile = profile.with_overrides(transient_rate=transient_rate)
    return SyntheticLayeredLM(profile, SimDims(), seed=seed)


class _AlwaysFirePredictor(PredictorBank):
    """Adversarial predictor that fires at every layer."""

    def probability(self, layer, features):
        return 1.0


class _NeverFirePredictor(PredictorBank):
    def probability(self, layer, features):
        return 0.0


class TestAdversarialPredictors:
    def test_always_fire_still_correct_thanks_to_verification(self):
        """Even a predictor that fires everywhere cannot corrupt the output:
        verification only admits the model's own argmax when it is in the
        speculative set, and without transients that equals the dense token."""
        lm = fresh(transient_rate=0.0)
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([3, 1, 4], 60)
        dense = DenseEngine(fresh(transient_rate=0.0)).generate([3, 1, 4], 60)
        assert result.tokens == dense.tokens
        # It pays for its eagerness in verification calls.
        assert result.ledger.calls(Event.LM_HEAD_FULL) > 60

    def test_never_fire_degrades_to_dense(self):
        lm = fresh()
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = _NeverFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig())
        result = engine.generate([3, 1, 4], 40)
        assert result.early_exit_rate == 0.0
        assert result.avg_exit_layer == pytest.approx(32.0)
        dense = DenseEngine(fresh()).generate([3, 1, 4], 40)
        assert result.tokens == dense.tokens


class TestDegradedDraft:
    def test_useless_draft_forces_full_depth(self):
        """A draft that never contains the target makes early exit
        impossible (verification always fails) but never wrong."""
        lm = fresh(transient_rate=0.0)
        spec = Speculator(lm.oracle, k=4, hit_rate=0.0)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([5, 5, 5], 40)
        assert result.early_exit_rate == 0.0
        dense = DenseEngine(fresh(transient_rate=0.0)).generate([5, 5, 5], 40)
        assert result.tokens == dense.tokens

    def test_perfect_draft_maximizes_exits(self):
        lm = fresh(transient_rate=0.0)
        spec = Speculator(lm.oracle, k=4, hit_rate=1.0)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([5, 5, 5], 40)
        # Every step should exit at (or just after) its saturation layer.
        assert result.early_exit_rate > 0.85
        gaps = [e - s for e, s, r in zip(result.exit_layers, result.saturations,
                                         result.records) if r.early_exit]
        assert float(np.mean(gaps)) < 1.5


class TestThresholdExtremes:
    def test_threshold_near_one_suppresses_exits(self):
        lm = fresh()
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = PredictorBank(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(exit_threshold=0.999))
        result = engine.generate([1, 2, 3], 30)
        assert result.early_exit_rate <= 0.2

    def test_min_exit_layer_at_depth_limit(self):
        lm = fresh()
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        cfg = SpecEEConfig(min_exit_layer=lm.n_layers - 1)
        engine = SpecEEEngine(lm, spec, bank, cfg,
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([1, 2, 3], 20)
        assert result.early_exit_rate == 0.0


class TestErrorPropagationBound:
    def test_transient_error_rate_bounded(self):
        """Per-step disagreement with the dense model (same forced context)
        must stay near the transient rate — the Table 4 mechanism."""
        rate = 0.05
        lm = fresh(seed=99, transient_rate=rate)
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        # Teacher-force a reference so contexts never diverge; count steps
        # where the engine would have emitted a non-dense token.
        reference = lm.oracle.continuation([4, 2, 0], 120)
        result = engine.generate([4, 2, 0], 0, force_tokens=reference)
        dense = DenseEngine(fresh(seed=99, transient_rate=rate))
        ref_run = dense.generate([4, 2, 0], 0, force_tokens=reference)
        # Compare the exit-layer logprob of the reference: a transient exit
        # shows up as a (much) lower logprob than dense at the same step.
        disagreements = sum(
            1 for a, b in zip(result.logprobs, ref_run.logprobs) if a < b - 2.0
        )
        assert disagreements / len(reference) < 3 * rate + 0.05


# ---------------------------------------------------------------------------
# fault-plan parsing and the injector's deterministic schedule
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_round_trips_kinds_and_params(self):
        plan = FaultPlan.parse(
            "crash@0.3:replica=0,down=0.5;slow@0.1:factor=2.0,duration=0.2;"
            "corrupt@0.2:replica=1;anomaly@0.4:duration=0.3;drain@0.6:replica=0")
        assert plan.name == "anomaly+corrupt+crash+drain+slow"
        by_kind = {type(e).__name__: e for e in plan.events}
        crash = by_kind["ReplicaCrash"]
        assert (crash.at_s, crash.replica, crash.down_s) == (0.3, 0, 0.5)
        assert by_kind["TickSlowdown"].factor == 2.0
        assert by_kind["PredictorAnomaly"].duration_s == 0.3

    def test_presets_all_parse(self):
        for preset in FAULT_PRESETS:
            plan = FaultPlan.parse(preset)
            assert bool(plan) == (preset != "none")

    @pytest.mark.parametrize("spec", [
        "crash",                      # missing @time
        "crash@-1.0",                 # negative time
        "meteor@0.5",                 # unknown kind
        "crash@0.3:replica=zero",     # bad replica
        "slow@0.1:factor=0.5",        # slowdown must slow things down
        "crash@0.3:down=-2",          # negative outage
        "anomaly@0.2:duration=0",     # empty window
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_empty_plan_is_falsy_and_named_none(self):
        assert not FaultPlan.none()
        assert FaultPlan.none().name == "none"
        assert not FaultPlan.parse("none")

    def test_injector_resolves_any_deterministically(self):
        plan = FaultPlan((ReplicaCrash(0.5),))
        picks = {FaultInjector(plan, 4, seed=11).pop_transition()[2]
                 for _ in range(3)}
        assert len(picks) == 1  # same seed -> same replica every time
        other = FaultInjector(plan, 4, seed=12).pop_transition()[2]
        assert other in range(4)

    def test_transitions_ordered_with_revives_after_crashes(self):
        inj = FaultInjector("crash@0.4:replica=1,down=0.2;crash@0.1:replica=0", 2,
                            seed=0)
        order = [inj.pop_transition() for _ in range(3)]
        assert [(t, k, r) for t, k, r in order] == [
            (0.1, "crash", 0), (0.4, "crash", 1),
            (pytest.approx(0.6), "revive", 1)]

    def test_chaos_plan_is_seeded(self):
        a = FaultPlan.chaos(duration_s=2.0, seed=3)
        b = FaultPlan.chaos(duration_s=2.0, seed=3)
        c = FaultPlan.chaos(duration_s=2.0, seed=4)
        assert a == b and a != c and bool(a)

    def test_replica_health_permanent_death(self):
        health = ReplicaHealth(permanent_after=2)
        assert health.routable
        health.record_crash()
        assert health.revive()
        health.record_crash()
        assert health.permanently_dead and not health.revive()
        assert health.state == "dead" and not health.serving
        # A completion in between would have reset the streak.
        other = ReplicaHealth(permanent_after=2)
        other.record_crash()
        assert other.revive()
        other.record_completion()
        other.record_crash()
        assert not other.permanently_dead


# ---------------------------------------------------------------------------
# replica-level faults inside one AsyncServingEngine
# ---------------------------------------------------------------------------
class TestEngineFaults:
    SWAP_KWARGS = dict(batch_capacity=4, kv_blocks=12, block_size=4,
                       chunk_prefill_tokens=16, preemption="swap")

    def _swap_trace(self, rig, engine):
        return list(poisson_trace(
            8, 40.0, rig.model.vocab_size, seed=3, slo_scale=None,
            max_new_tokens_range=(24, 40),
            per_token_s=engine.latency.full_depth_token_time()))

    def test_kv_corruption_falls_back_to_recompute(self, rig):
        """A corrupted swap blob is detected by its checksum, the victim is
        replayed via recompute, the kill-switch trips — and every request
        still finishes with exactly the fault-free tokens."""
        clean = rig.async_serving_engine(**self.SWAP_KWARGS)
        trace = self._swap_trace(rig, clean)
        base = clean.run(list(trace))
        assert base.swaps > 0  # scenario really exercises the swap path

        view = FaultInjector("corrupt@0.0:replica=0", 1, seed=5).view(0)
        engine = rig.async_serving_engine(**self.SWAP_KWARGS, faults=view)
        report = engine.run(list(trace))
        assert report.kv_corruptions >= 1
        assert report.degraded_events >= 1
        assert set(report.results) == set(base.results)
        for rid, result in base.results.items():
            assert list(report.results[rid].tokens) == list(result.tokens)

    def test_anomaly_trips_kill_switch_then_rearms(self, rig):
        """A predictor-anomaly window forces degraded dense decode for its
        duration; once the window passes and a clean streak accumulates the
        engine re-arms speculation."""
        view = FaultInjector("anomaly@0.0:replica=0,duration=0.15", 1,
                             seed=5).view(0)
        engine = rig.async_serving_engine(**FLEET_KWARGS, faults=view)
        trace = poisson_trace(
            8, 40.0, rig.model.vocab_size, seed=3, slo_scale=None,
            per_token_s=engine.latency.full_depth_token_time())
        report = engine.run(list(trace))
        assert report.anomalous_ticks > 0
        assert report.degraded_events >= 1
        assert report.degraded_ticks >= report.anomalous_ticks - engine.anomaly_detect_ticks
        assert not engine.degraded  # re-armed before the run drained
        assert len(report.results) == 8

    def test_slowdown_stretches_makespan_but_not_tokens(self, rig):
        """Transient slowdowns reprice ticks; they must never change what
        gets decoded."""
        clean = rig.async_serving_engine(**FLEET_KWARGS)
        trace = list(poisson_trace(
            8, 40.0, rig.model.vocab_size, seed=3, slo_scale=None,
            per_token_s=clean.latency.full_depth_token_time()))
        base = clean.run(list(trace))

        view = FaultInjector("slow@0.0:replica=0,duration=9.0,factor=3.0", 1,
                             seed=5).view(0)
        slowed = rig.async_serving_engine(**FLEET_KWARGS, faults=view)
        report = slowed.run(list(trace))
        assert report.slowed_ticks > 0
        assert report.makespan_s > 1.5 * base.makespan_s
        for rid, result in base.results.items():
            assert list(report.results[rid].tokens) == list(result.tokens)

    def test_watchdog_fails_starved_sequences(self, rig):
        """Under heavy KV starvation a preempted sequence can sit without
        progress; the watchdog converts that hang into a typed rejection."""
        engine = rig.async_serving_engine(**self.SWAP_KWARGS, watchdog_ticks=4)
        report = engine.run(self._swap_trace(rig, engine))
        assert report.watchdog_timeouts >= 1
        assert report.watchdog_timeouts == len(report.rejected)
        for reason in report.rejected.values():
            assert "watchdog timeout" in reason
        # Untouched requests still finish.
        assert len(report.results) + len(report.rejected) == 8


# ---------------------------------------------------------------------------
# fleet-level crash/failover through the router
# ---------------------------------------------------------------------------
class TestFleetFailover:
    def test_empty_plan_is_bit_identical_to_no_fault_path(self, rig, trace,
                                                          fleet_baseline):
        report = rig.router_fleet(2, **FLEET_KWARGS, faults="none").run(trace)
        assert report.faults == "none" and report.crashes == 0
        assert report.assignments == fleet_baseline.assignments
        assert report.makespan_s == fleet_baseline.makespan_s
        for rid, result in fleet_baseline.results.items():
            assert list(report.results[rid].tokens) == list(result.tokens)

    def test_crash_mid_decode_recovers_token_identically(self, rig, trace,
                                                         fleet_baseline):
        """Permanently crash one of two replicas mid-run: its in-flight work
        fails over and finishes with exactly the fault-free tokens."""
        fleet = rig.router_fleet(2, **FLEET_KWARGS, faults="crash@0.3:replica=0")
        report = fleet.run(trace)
        assert report.crashes == 1
        assert report.replica_health == ["dead", "alive"]
        assert report.in_flight_at_crash > 0
        # Recovered counts token-less victims re-queued from scratch too.
        assert report.requests_recovered >= report.in_flight_at_crash
        assert report.requests_lost == 0
        assert report.recovered_fraction == 1.0
        assert len(report.results) == len(trace)
        for rid, result in fleet_baseline.results.items():
            assert list(report.results[rid].tokens) == list(result.tokens)

    def test_crash_during_prefill_requeues_and_recovers(self, rig, trace,
                                                        fleet_baseline):
        """A crash before any token is decoded re-queues the victims from
        scratch — still served, still token-identical."""
        fleet = rig.router_fleet(2, **FLEET_KWARGS, faults="crash@0.02:replica=0")
        report = fleet.run(trace)
        assert report.crashes == 1
        assert report.requests_lost == 0
        assert len(report.results) == len(trace)
        for rid, result in fleet_baseline.results.items():
            assert list(report.results[rid].tokens) == list(result.tokens)

    def test_double_crash_of_failover_target(self, rig, trace, fleet_baseline):
        """The failover target itself dies holding salvaged work; the work
        retries with backoff until the target revives, and everything served
        is still token-identical."""
        fleet = rig.router_fleet(
            2, **FLEET_KWARGS,
            faults="crash@0.1:replica=0;crash@0.25:replica=1,down=0.2")
        report = fleet.run(trace)
        assert report.crashes == 2
        assert report.restarts == 1
        assert report.retries > report.in_flight_at_crash  # re-retries happened
        assert report.requests_recovered > 0
        assert report.requests_lost == 0
        assert len(report.results) + len(report.rejected) == len(trace)
        for rid in report.results:
            assert (list(report.results[rid].tokens)
                    == list(fleet_baseline.results[rid].tokens))

    def test_all_replicas_dead_rejects_instead_of_hanging(self, rig, trace):
        fleet = rig.router_fleet(
            2, **FLEET_KWARGS, faults="crash@0.1:replica=0;crash@0.12:replica=1")
        report = fleet.run(trace)
        assert report.replica_health == ["dead", "dead"]
        assert not report.results
        assert len(report.rejected) == len(trace)
        reasons = set(report.rejected.values())
        assert any("no live replica" in r for r in reasons)
        assert any("no healthy replica" in r for r in reasons)
        assert math.isnan(report.recovered_fraction) or \
            report.recovered_fraction == 0.0

    def test_failover_disabled_ablation_loses_work(self, rig, trace):
        fleet = rig.router_fleet(2, **FLEET_KWARGS,
                                 faults="crash@0.3:replica=0", failover=False)
        report = fleet.run(trace)
        assert not report.failover
        assert report.requests_lost > 0
        assert report.requests_recovered == 0
        assert all("failover disabled" in report.rejected[rid]
                   for rid in report.rejected)
        assert len(report.results) + report.requests_lost == len(trace)

    def test_drain_excludes_replica_from_new_arrivals(self, rig, trace,
                                                      fleet_baseline):
        """A drained replica finishes what it holds but takes nothing new;
        nothing is lost and tokens are unchanged."""
        report = rig.router_fleet(2, **FLEET_KWARGS,
                                  faults="drain@0.1:replica=0").run(trace)
        assert report.drains == 1 and report.crashes == 0
        assert report.replica_health == ["draining", "alive"]
        assert len(report.results) == len(trace)
        # Every arrival after the drain landed on replica 1.
        drained_after = [rid for rid, replica in report.assignments.items()
                         if replica == 0]
        assert len(drained_after) < len(trace) / 2
        for rid, result in fleet_baseline.results.items():
            assert list(report.results[rid].tokens) == list(result.tokens)

    def test_crash_restart_preset_revives_the_replica(self, rig, trace):
        report = rig.router_fleet(2, **FLEET_KWARGS,
                                  faults="crash-restart").run(trace)
        assert report.crashes == 1 and report.restarts == 1
        assert report.replica_health == ["alive", "alive"]
        assert len(report.results) + len(report.rejected) == len(trace)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chaos_sweep_conserves_requests(self, rig, trace, seed):
        """Randomized chaos plans across seeds: runs terminate, every request
        is either served or typed-rejected, accounting stays consistent, and
        the whole thing is deterministic under a fixed seed."""
        plan = FaultPlan.chaos(duration_s=1.5, seed=seed)
        fleet = rig.router_fleet(3, **FLEET_KWARGS, faults=plan, fault_seed=seed)
        report = fleet.run(trace)
        assert len(report.results) + len(report.rejected) == len(trace)
        assert math.isfinite(report.makespan_s)
        assert report.requests_lost <= len(report.rejected)
        assert report.requests_recovered <= report.in_flight_at_crash + \
            report.retries
        frac = report.recovered_fraction
        assert math.isnan(frac) or 0.0 <= frac <= 1.0
        again = rig.router_fleet(3, **FLEET_KWARGS, faults=plan,
                                 fault_seed=seed).run(trace)
        assert again.assignments == report.assignments
        assert sorted(again.results) == sorted(report.results)
        for rid, result in report.results.items():
            assert list(again.results[rid].tokens) == list(result.tokens)
