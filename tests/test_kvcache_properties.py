"""Seeded property sweep over KVCache edges and preemption replay.

Randomized lengths deliberately straddle the ``initial_tokens`` allocation
and capacity-doubling boundaries — the places where a growth or swap bug
would corrupt KV silently.  The replay property drives the real backend's
``drop_state_kv``/``recompute_state`` against an uninterrupted decode and
demands token identity in both KV-fill modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KVCorruptionError
from repro.model.transformer_backend import TransformerLayeredLM
from repro.nn.attention import KVCache
from repro.nn.transformer import TinyTransformerLM, TransformerConfig
from repro.serving.paged_kv import PagedKVCache, kv_checksum

INITIAL = 8
MAX_TOKENS = 64


def _fill(cache: KVCache, rng: np.random.Generator, per_layer: list) -> None:
    """Append ``per_layer[l]`` tokens to layer ``l`` in random-size chunks."""
    for layer, total in enumerate(per_layer):
        done = 0
        while done < total:
            step = int(rng.integers(1, total - done + 1))
            k = rng.normal(size=(cache.n_kv_heads, step, cache.head_dim))
            v = rng.normal(size=(cache.n_kv_heads, step, cache.head_dim))
            cache.append(layer, k, v)
            done += step


class TestKVCacheProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        lengths=st.lists(st.integers(0, MAX_TOKENS), min_size=1, max_size=4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_swap_round_trip_bit_exact(self, lengths, seed):
        """swap_out -> swap_in restores every layer's filled prefix bit for
        bit, across ragged lengths straddling the initial allocation."""
        rng = np.random.default_rng(seed)
        cache = KVCache(len(lengths), n_kv_heads=2, head_dim=4,
                        max_tokens=MAX_TOKENS, initial_tokens=INITIAL)
        _fill(cache, rng, lengths)
        before = [tuple(arr.copy() for arr in cache.view(l))
                  for l in range(len(lengths))]
        blob = cache.swap_out()
        # Eviction really shrinks the device allocation back to initial.
        assert cache.capacity == INITIAL
        assert all(cache.length(l) == 0 for l in range(len(lengths)))
        cache.swap_in(blob)
        for layer, (k, v) in enumerate(before):
            k2, v2 = cache.view(layer)
            assert np.array_equal(k, k2) and np.array_equal(v, v2)
            assert cache.length(layer) == lengths[layer]

    @settings(max_examples=60, deadline=None)
    @given(
        total=st.integers(1, MAX_TOKENS),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_geometric_growth_invariants(self, total, seed):
        """Capacity is always initial * 2^m (capped at max_tokens), holds the
        filled prefix, and never exceeds the cap."""
        rng = np.random.default_rng(seed)
        cache = KVCache(1, n_kv_heads=2, head_dim=4,
                        max_tokens=MAX_TOKENS, initial_tokens=INITIAL)
        _fill(cache, rng, [total])
        assert cache.length(0) == total
        assert total <= cache.capacity <= MAX_TOKENS
        growth = cache.capacity / INITIAL
        assert growth >= 1 and (cache.capacity == MAX_TOKENS
                                or growth == 2 ** int(np.log2(growth)))

    def test_append_past_max_tokens_raises(self):
        cache = KVCache(1, 2, 4, max_tokens=8, initial_tokens=4)
        cache.append(0, np.zeros((2, 8, 4)), np.zeros((2, 8, 4)))
        with pytest.raises(ValueError):
            cache.append(0, np.zeros((2, 1, 4)), np.zeros((2, 1, 4)))


def _paged_with_swapped_seq(rng: np.random.Generator, tokens: int) -> PagedKVCache:
    """A paged cache whose sequence 0 is parked host-side with ``tokens``."""
    cache = PagedKVCache(n_blocks=32, block_size=4, n_kv_heads=2, head_dim=4)
    cache.add_sequence(0)
    for _ in range(tokens):
        cache.append(0, rng.normal(size=(2, 4)), rng.normal(size=(2, 4)))
    cache.swap_out(0)
    return cache


class TestSwapChecksums:
    """Satellite: every swap blob carries a CRC; swap_in proves integrity."""

    @settings(max_examples=60, deadline=None)
    @given(tokens=st.integers(1, MAX_TOKENS), seed=st.integers(0, 2**31 - 1))
    def test_paged_corruption_always_detected(self, tokens, seed):
        """Any single flipped value in a parked blob fails verify/swap_in
        with the typed error, and the blob stays in place for drop_host."""
        rng = np.random.default_rng(seed)
        cache = _paged_with_swapped_seq(rng, tokens)
        cache.verify_host(0)  # intact blob verifies clean
        cache.corrupt_host(0, rng)
        with pytest.raises(KVCorruptionError):
            cache.verify_host(0)
        with pytest.raises(KVCorruptionError):
            cache.swap_in(0)
        assert cache.is_swapped(0)  # detection must not consume the blob
        assert cache.drop_host(0) == tokens
        assert not cache.is_swapped(0)

    @settings(max_examples=40, deadline=None)
    @given(tokens=st.integers(1, MAX_TOKENS), seed=st.integers(0, 2**31 - 1))
    def test_paged_intact_blob_round_trips(self, tokens, seed):
        """Checksumming never perturbs an honest swap round trip."""
        rng = np.random.default_rng(seed)
        cache = PagedKVCache(n_blocks=32, block_size=4, n_kv_heads=2, head_dim=4)
        cache.add_sequence(0)
        appended = []
        for _ in range(tokens):
            k, v = rng.normal(size=(2, 4)), rng.normal(size=(2, 4))
            cache.append(0, k, v)
            appended.append((k, v))
        cache.swap_out(0)
        assert cache.swap_in(0) == tokens
        k2, v2 = cache.gather(0)
        assert np.array_equal(k2, np.stack([k for k, _ in appended]))
        assert np.array_equal(v2, np.stack([v for _, v in appended]))

    def test_kv_checksum_is_content_addressed(self):
        k = np.arange(8.0).reshape(2, 4)
        v = np.ones((2, 4))
        assert kv_checksum(k, v) == kv_checksum(k.copy(), v.copy())
        tampered = k.copy()
        tampered[0, 0] += 1e-9
        assert kv_checksum(tampered, v) != kv_checksum(k, v)

    @settings(max_examples=25, deadline=None)
    @given(
        lengths=st.lists(st.integers(1, MAX_TOKENS), min_size=1, max_size=3),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_backend_blob_tamper_detected(self, lengths, seed):
        """The real-tensor KVCache blob is covered too: tampering any of k,
        v or lengths after swap_out makes swap_in refuse to restore."""
        rng = np.random.default_rng(seed)
        cache = KVCache(len(lengths), n_kv_heads=2, head_dim=4,
                        max_tokens=MAX_TOKENS, initial_tokens=INITIAL)
        _fill(cache, rng, lengths)
        blob = cache.swap_out()
        field = ("k", "v", "lengths")[int(rng.integers(3))]
        flat = blob[field].reshape(-1)
        index = int(rng.integers(flat.size))
        flat[index] += 1
        with pytest.raises(KVCorruptionError):
            cache.swap_in(blob)


REPLAY_CFG = TransformerConfig(vocab_size=32, dim=16, n_layers=3, n_heads=2,
                               intermediate_dim=24, max_positions=64)
_REPLAY_LM = TinyTransformerLM(REPLAY_CFG, seed=7)


def _decode(backend, prompt, exits):
    """Greedy decode committing at the given exit layer per step."""
    state = backend.start(prompt)
    tokens = []
    for exit_layer in exits:
        backend.begin_step(state)
        hidden = backend.run_to_layer(state, exit_layer)
        token = backend.greedy_token(hidden)
        backend.commit(state, token, exit_layer)
        tokens.append(token)
    return state, tokens


class TestRecomputeReplay:
    @settings(max_examples=25, deadline=None)
    @given(
        prompt=st.lists(st.integers(0, REPLAY_CFG.vocab_size - 1),
                        min_size=1, max_size=6),
        exits=st.lists(st.integers(0, REPLAY_CFG.n_layers - 1),
                       min_size=1, max_size=5),
        kv_fill=st.sampled_from(["full", "propagate"]),
    )
    def test_recompute_matches_incremental_decode(self, prompt, exits, kv_fill):
        """drop + recompute_state, then keep decoding: the continuation must
        be token-identical to a never-preempted run, in both fill modes."""
        backend = TransformerLayeredLM(lm=_REPLAY_LM, max_tokens=MAX_TOKENS,
                                       kv_fill=kv_fill)
        tail = [REPLAY_CFG.n_layers - 1, 0, REPLAY_CFG.n_layers - 1]
        _, reference = _decode(backend, prompt, exits + tail)

        state, tokens = _decode(backend, prompt, exits)
        assert tokens == reference[: len(exits)]
        backend.drop_state_kv(state)
        backend.recompute_state(state)
        for step, exit_layer in enumerate(tail):
            backend.begin_step(state)
            hidden = backend.run_to_layer(state, exit_layer)
            token = backend.greedy_token(hidden)
            backend.commit(state, token, exit_layer)
            assert token == reference[len(exits) + step]

    @settings(max_examples=10, deadline=None)
    @given(
        prompt=st.lists(st.integers(0, REPLAY_CFG.vocab_size - 1),
                        min_size=1, max_size=6),
        exits=st.lists(st.integers(0, REPLAY_CFG.n_layers - 1),
                       min_size=1, max_size=5),
    )
    def test_propagate_recompute_is_bit_exact(self, prompt, exits):
        """Propagate-mode replay reproduces the cache contents exactly, not
        just the argmaxes: it reruns the very computation each commit did."""
        backend = TransformerLayeredLM(lm=_REPLAY_LM, max_tokens=MAX_TOKENS,
                                       kv_fill="propagate")
        state, _ = _decode(backend, prompt, exits)
        before = [tuple(arr.copy() for arr in state.cache.view(l))
                  for l in range(REPLAY_CFG.n_layers)]
        backend.drop_state_kv(state)
        backend.recompute_state(state)
        for layer, (k, v) in enumerate(before):
            k2, v2 = state.cache.view(layer)
            assert np.array_equal(k, k2) and np.array_equal(v, v2)
