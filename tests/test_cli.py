"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig17_memory"])
        assert args.scale == "small" and args.seed == 0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig14_cloud_ar" in out and "table04_accuracy" in out

    def test_info_model(self, capsys):
        assert main(["info", "llama2-7b"]) == 0
        assert "params" in capsys.readouterr().out

    def test_info_device(self, capsys):
        assert main(["info", "a100-80g"]) == 0
        assert "TFLOPS" in capsys.readouterr().out

    def test_info_unknown(self, capsys):
        assert main(["info", "abacus"]) == 2

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig17_memory", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "memory" in out and "completed in" in out

    def test_run_writes_file(self, tmp_path):
        path = tmp_path / "report.txt"
        assert main(["run", "table02_03_configs", "--out", str(path)]) == 0
        assert "hardware platforms" in path.read_text()

    def test_serve(self, capsys):
        assert main(["serve", "--requests", "5", "--max-new-tokens", "12",
                     "--batch-capacity", "4"]) == 0
        out = capsys.readouterr().out
        assert "continuous batching" in out
        assert "throughput speedup" in out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.batch_capacity == 8 and args.scheduler == "two_level"
        assert args.framework == "vllm"
        assert args.tp == 1 and args.pp == 1
        assert args.tp_link == "nvlink" and args.pp_link == "pcie4"

    def test_serve_sharded(self, capsys):
        assert main(["serve", "--requests", "4", "--max-new-tokens", "8",
                     "--batch-capacity", "4", "--tp", "2", "--pp", "2"]) == 0
        out = capsys.readouterr().out
        assert "tp=2 pp=2" in out
        assert "throughput speedup" in out

    def test_serve_sharded_trace(self, capsys):
        assert main(["serve", "--trace", "poisson", "--requests", "4",
                     "--max-new-tokens", "8", "--batch-capacity", "4",
                     "--kv-blocks", "16", "--block-size", "4",
                     "--tp", "2", "--pp", "2"]) == 0
        out = capsys.readouterr().out
        assert "tp=2 pp=2" in out
        assert "SLO attainment" in out


class TestFleetServe:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.replicas == 1 and args.route == "round_robin"
        assert args.sched == "fifo_priority" and args.clients == "open"

    def test_serve_fleet_trace(self, capsys):
        assert main(["serve", "--replicas", "3", "--route", "exit_aware",
                     "--sched", "edf", "--trace", "poisson",
                     "--requests", "6", "--max-new-tokens", "12",
                     "--batch-capacity", "4",
                     "--kv-blocks", "16", "--block-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "fleet serving: 3x" in out
        assert "route=exit_aware" in out and "sched=edf" in out
        assert "goodput" in out

    def test_serve_closed_loop_clients(self, capsys):
        assert main(["serve", "--replicas", "2", "--clients", "closed:3",
                     "--requests", "6", "--max-new-tokens", "12",
                     "--batch-capacity", "4",
                     "--kv-blocks", "16", "--block-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "closed:3 clients" in out
        assert "requests per replica" in out

    def test_serve_fleet_sharded_replicas(self, capsys):
        assert main(["serve", "--replicas", "2", "--trace", "poisson",
                     "--requests", "4", "--max-new-tokens", "8",
                     "--batch-capacity", "4", "--kv-blocks", "16",
                     "--block-size", "4", "--tp", "2"]) == 0
        out = capsys.readouterr().out
        assert "tp=2" in out and "fleet serving" in out

    def test_sched_flag_on_single_engine_trace(self, capsys):
        assert main(["serve", "--trace", "poisson", "--sched", "edf",
                     "--requests", "4", "--max-new-tokens", "8",
                     "--batch-capacity", "4", "--kv-blocks", "16",
                     "--block-size", "4"]) == 0
        assert "sched=edf" in capsys.readouterr().out

    def test_fleet_without_workload_errors(self, capsys):
        assert main(["serve", "--replicas", "2"]) == 2
        assert "needs a workload" in capsys.readouterr().err

    def test_clients_and_trace_conflict_errors(self, capsys):
        assert main(["serve", "--replicas", "2", "--clients", "closed:4",
                     "--trace", "bursty"]) == 2
        assert "both workloads" in capsys.readouterr().err

    def test_bad_clients_spec_errors(self, capsys):
        assert main(["serve", "--replicas", "2", "--clients", "closed:zero",
                     "--trace", "poisson"]) == 2
        assert "--clients" in capsys.readouterr().err

    def test_replicas_below_one_errors(self, capsys):
        assert main(["serve", "--replicas", "0", "--trace", "poisson"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_transformer_backend_fleet(self, capsys):
        assert main(["serve", "--backend", "transformer",
                     "--replicas", "2", "--trace", "poisson",
                     "--requests", "4", "--max-new-tokens", "6",
                     "--batch-capacity", "4", "--kv-blocks", "16",
                     "--block-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "fleet serving: 2x tiny-transformer (priced as llama2-7b)" in out
        assert "requests per replica" in out

    def test_transformer_backend_closed_clients(self, capsys):
        assert main(["serve", "--backend", "transformer",
                     "--clients", "closed:2", "--requests", "4",
                     "--max-new-tokens", "6", "--batch-capacity", "4",
                     "--kv-blocks", "16", "--block-size", "4"]) == 0
        assert "closed:2 clients" in capsys.readouterr().out
