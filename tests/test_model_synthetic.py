"""Tests for the synthetic layered LM — the planted probability shift."""

import numpy as np
import pytest

from repro.config import SimDims
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM


@pytest.fixture(scope="module")
def lm():
    return SyntheticLayeredLM(get_profile("llama2-7b"), SimDims(), seed=42)


class TestInterfaceContract:
    def test_start_requires_prompt(self, lm):
        with pytest.raises(ValueError):
            lm.start([])

    def test_layers_must_run_in_order(self, lm):
        state = lm.start([1, 2, 3])
        lm.begin_step(state)
        lm.layer_forward(state, 0)
        with pytest.raises(ValueError):
            lm.layer_forward(state, 2)

    def test_layer_out_of_range(self, lm):
        state = lm.start([1, 2, 3])
        lm.begin_step(state)
        with pytest.raises(ValueError):
            lm.run_to_layer(state, lm.n_layers)

    def test_forward_before_begin_raises(self, lm):
        state = lm.start([1, 2, 3])
        with pytest.raises(RuntimeError):
            lm.layer_forward(state, 0)

    def test_commit_resets_cursor(self, lm):
        state = lm.start([1, 2, 3])
        lm.begin_step(state)
        lm.run_to_layer(state, 5)
        lm.commit(state, 7, 5)
        assert state.layer_cursor == -1
        assert state.context[-1] == 7


class TestPlantedDynamics:
    def test_dense_output_equals_target(self, lm):
        state = lm.start([5, 9, 2, 44])
        for _ in range(40):
            lm.begin_step(state)
            target = state.plan.target
            hidden = lm.run_to_layer(state, lm.n_layers - 1)
            assert lm.greedy_token(hidden) == target
            lm.commit(state, target, lm.n_layers - 1)

    def test_argmax_flips_exactly_at_saturation(self, lm):
        state = lm.start([1, 2, 3])
        checked = 0
        for _ in range(30):
            lm.begin_step(state)
            plan = state.plan
            argmaxes = [
                int(np.argmax(lm.lm_head_full(lm.layer_forward(state, l))))
                for l in range(lm.n_layers)
            ]
            sat = plan.saturation_layer
            if 8 <= sat <= lm.n_layers - 3:
                checked += 1
                assert argmaxes[sat] == plan.target
                pre = sat - 6
                in_transient = plan.transient is not None and (
                    plan.transient[1] <= pre <= plan.transient[2])
                if pre >= 0 and not in_transient:
                    assert argmaxes[pre] == plan.dominant
            lm.commit(state, argmaxes[-1], lm.n_layers - 1)
        assert checked > 5

    def test_lm_head_slice_matches_full(self, lm):
        state = lm.start([3, 3, 3])
        lm.begin_step(state)
        h = lm.run_to_layer(state, 10)
        ids = np.array([5, 100, 200])
        assert np.allclose(lm.lm_head_slice(h, ids), lm.lm_head_full(h)[ids])

    def test_hidden_unit_norm(self, lm):
        state = lm.start([4, 4, 4])
        lm.begin_step(state)
        h = lm.run_to_layer(state, 3)
        assert np.linalg.norm(h) == pytest.approx(1.0, abs=1e-9)

    def test_probability_trajectory_shift(self, lm):
        state = lm.start([8, 8, 8])
        lm.begin_step(state)
        plan = state.plan
        traj = lm.probability_trajectory(state, [plan.target])
        sat = plan.saturation_layer
        if 4 <= sat <= lm.n_layers - 3:
            assert traj[max(sat - 5, 0), 0] < 0.2
            assert traj[min(sat + 2, lm.n_layers - 1), 0] > 0.5

    def test_transient_rate_controls_spikes(self):
        base = get_profile("llama2-7b")
        lm_t = SyntheticLayeredLM(base.with_overrides(transient_rate=1.0), SimDims(), seed=1)
        state = lm_t.start([2, 4, 6])
        spikes = 0
        for _ in range(20):
            lm_t.begin_step(state)
            spikes += state.plan.transient is not None
            lm_t.commit(state, state.plan.target, lm_t.n_layers - 1)
        assert spikes > 10

    def test_scripted_targets_override_oracle(self, lm):
        script = [9, 17, 33]
        state = lm.start([1, 1, 1], script=script)
        for expected in script:
            lm.begin_step(state)
            assert state.plan.target == expected
            lm.commit(state, expected, lm.n_layers - 1)

    def test_determinism_across_instances(self):
        a = SyntheticLayeredLM(get_profile("llama2-7b"), SimDims(), seed=9)
        b = SyntheticLayeredLM(get_profile("llama2-7b"), SimDims(), seed=9)
        sa, sb = a.start([7, 7, 7]), b.start([7, 7, 7])
        assert a.generate_dense(sa, 12) == b.generate_dense(sb, 12)


class TestTreeMode:
    def test_tree_layers_run_in_order(self, lm):
        state = lm.start([2, 3, 4])
        lm.begin_tree(state, [10, 11, 12], [-1, -1, 0])
        lm.tree_layer_forward(state, 0)
        with pytest.raises(ValueError):
            lm.tree_layer_forward(state, 2)

    def test_tree_hidden_shape(self, lm):
        state = lm.start([2, 3, 4])
        lm.begin_tree(state, [10, 11, 12, 13], [-1, -1, 0, 2])
        h = lm.tree_layer_forward(state, 0)
        assert h.shape == (4, lm.hidden_dim)

    def test_end_tree_commits_tokens(self, lm):
        state = lm.start([2, 3, 4])
        lm.begin_tree(state, [10, 11], [-1, -1])
        lm.tree_layer_forward(state, 0)
        lm.end_tree(state, [10, 99], exit_layer=20)
        assert state.context[-2:] == [10, 99]
        assert state.tree is None

    def test_node_outputs_saturate_to_path_targets(self, lm):
        state = lm.start([6, 6, 6])
        tokens, parents = [20, 30], [-1, 0]
        tree = lm.begin_tree(state, tokens, parents)
        hidden = None
        for layer in range(lm.n_layers):
            hidden = lm.tree_layer_forward(state, layer)
        for i, plan in enumerate(tree.plans):
            out = int(np.argmax(lm.lm_head_full(hidden[i])))
            assert out == plan.target

    def test_mismatched_parents_rejected(self, lm):
        state = lm.start([2, 3, 4])
        with pytest.raises(ValueError):
            lm.begin_tree(state, [1, 2], [-1])
