"""Tests for the hardware models: ledger, latency, energy, memory."""

import numpy as np
import pytest

from repro.config import get_model_spec
from repro.hardware.devices import DEVICES, get_device
from repro.hardware.energy import EnergyModel
from repro.hardware.frameworks import FRAMEWORKS, get_framework
from repro.hardware.latency import LatencyModel
from repro.hardware.ledger import CostLedger, Event
from repro.hardware.memory import MemoryModel


class TestLedger:
    def test_add_and_counts(self):
        ledger = CostLedger()
        ledger.add(Event.DECODER_LAYER, calls=3)
        ledger.add(Event.LM_HEAD_SLICE, units=4)
        assert ledger.calls(Event.DECODER_LAYER) == 3
        assert ledger.units(Event.DECODER_LAYER) == 3
        assert ledger.units(Event.LM_HEAD_SLICE) == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().add("not_an_event")

    def test_merge_accumulates(self):
        a, b = CostLedger(), CostLedger()
        a.add(Event.DECODER_LAYER, calls=2)
        b.add(Event.DECODER_LAYER, calls=5)
        b.tokens_generated = 3
        b.steps = 3
        a.merge(b)
        assert a.calls(Event.DECODER_LAYER) == 7
        assert a.tokens_generated == 3
        assert a.steps == 3

    def test_copy_independent(self):
        a = CostLedger()
        a.add(Event.PREDICTOR)
        c = a.copy()
        c.add(Event.PREDICTOR)
        assert a.calls(Event.PREDICTOR) == 1

    def test_layers_per_token(self):
        ledger = CostLedger()
        ledger.add(Event.DECODER_LAYER, calls=48)
        ledger.tokens_generated = 2
        assert ledger.decoder_layers_per_token == 24


class TestDevicesFrameworks:
    def test_registries_complete(self):
        assert {"a100-80g", "rtx4090", "rtx4060-laptop"} <= set(DEVICES)
        assert {"hf", "vllm", "awq", "llama.cpp", "powerinfer"} <= set(FRAMEWORKS)

    def test_unknown_lookups(self):
        with pytest.raises(KeyError):
            get_device("tpu")
        with pytest.raises(KeyError):
            get_framework("tensorrt")

    def test_awq_uses_narrow_weights(self):
        assert get_framework("awq").weight_bytes_per_param < 1.0

    def test_offload_fraction_bounds(self):
        with pytest.raises(ValueError):
            get_framework("hf").with_overrides(gpu_weight_fraction=0.0)

    def test_device_rejects_negative_overhead_and_power(self):
        from dataclasses import replace

        good = get_device("a100-80g")
        with pytest.raises(ValueError, match="kernel_overhead_us"):
            replace(good, kernel_overhead_us=-1.0)
        with pytest.raises(ValueError, match="tdp_w/idle_w"):
            replace(good, tdp_w=-400.0)
        with pytest.raises(ValueError, match="tdp_w/idle_w"):
            replace(good, idle_w=-5.0)
        with pytest.raises(ValueError, match="dynamic headroom"):
            replace(good, idle_w=good.tdp_w + 1.0)
        # Zero overhead is a legal (idealised) device.
        assert replace(good, kernel_overhead_us=0.0).kernel_overhead_us == 0.0


def make_ledger(layers=32, tokens=10):
    ledger = CostLedger()
    ledger.add(Event.DECODER_LAYER, calls=layers * tokens)
    ledger.add(Event.LM_HEAD_FULL, calls=tokens)
    ledger.tokens_generated = tokens
    ledger.steps = tokens
    return ledger


class TestLatencyModel:
    def test_hf_7b_a100_calibration(self):
        """Modelled HF Llama2-7B on A100 lands near the paper's ~42 tok/s."""
        model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
        tps = model.price(make_ledger()).tokens_per_second
        assert 35 < tps < 50

    def test_bigger_model_slower(self):
        l7 = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
        l13 = LatencyModel(get_model_spec("llama2-13b"), "a100-80g", "hf")
        t7 = l7.price(make_ledger(32)).total_s
        t13 = l13.price(make_ledger(40)).total_s
        assert t13 > t7

    def test_more_bandwidth_faster(self):
        spec = get_model_spec("llama2-7b")
        a100 = LatencyModel(spec, "a100-80g", "vllm").price(make_ledger()).total_s
        laptop = LatencyModel(spec, "rtx4060-laptop", "vllm").price(make_ledger()).total_s
        assert laptop > a100

    def test_fewer_layers_faster(self):
        model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
        full = model.price(make_ledger(32)).total_s
        early = model.price(make_ledger(23)).total_s
        assert early < full * 0.85

    def test_batched_verify_cheaper_than_serial(self):
        model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
        assert model.decoder_layer_time(10.0) < 5 * model.decoder_layer_time(1.0)

    def test_per_event_sums_to_total_minus_overhead(self):
        model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
        ledger = make_ledger()
        breakdown = model.price(ledger)
        accounted = sum(breakdown.per_event_s.values())
        overhead = ledger.steps * model.framework.token_overhead_us * 1e-6
        assert breakdown.total_s == pytest.approx(accounted + overhead)

    def test_offload_requires_cpu(self):
        with pytest.raises(ValueError):
            LatencyModel(get_model_spec("llama2-7b"), "rtx4060-laptop", "llama.cpp")

    def test_offload_prices_cpu_share(self):
        spec = get_model_spec("llama2-7b")
        hybrid = LatencyModel(spec, "rtx4060-laptop", "llama.cpp",
                              cpu_device="i7-13650hx")
        tps = hybrid.price(make_ledger()).tokens_per_second
        assert 3 < tps < 12  # the paper's llama.cpp baseline is ~5.6 tok/s

    def test_predictor_time_small_vs_layer(self):
        model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
        assert model.predictor_time() < 0.2 * model.decoder_layer_time()


class TestEnergyModel:
    def test_power_between_idle_and_tdp(self):
        device = get_device("a100-80g")
        energy = EnergyModel(device)
        for kind in Event.ALL:
            p = energy.power_during(kind)
            assert device.idle_w <= p <= device.tdp_w

    def test_dense_power_calibration(self):
        """Dense decode draws ~200 W on the A100 (paper Sec. 7.3.1)."""
        model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
        report = EnergyModel(get_device("a100-80g")).report(model.price(make_ledger()))
        assert 175 < report.avg_power_w < 225

    def test_early_exit_reduces_power_and_energy(self):
        model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
        energy = EnergyModel(get_device("a100-80g"))
        dense = energy.report(model.price(make_ledger(32)))
        # Early-exit ledger: fewer layers plus predictor/draft events.
        ledger = make_ledger(23)
        ledger.add(Event.PREDICTOR, calls=8 * 10)
        ledger.add(Event.DRAFT_STEP, calls=10)
        specee = energy.report(model.price(ledger))
        assert specee.avg_power_w < dense.avg_power_w
        assert specee.energy_per_token_j < dense.energy_per_token_j


class TestMemoryModel:
    def test_draft_overhead_magnitudes(self):
        m7 = MemoryModel(get_model_spec("llama2-7b"), use_draft=True)
        m13 = MemoryModel(get_model_spec("llama2-13b"), use_draft=True)
        assert 0.6 < m7.draft_gib < 1.2      # paper ~0.9 GB
        assert 1.0 < m13.draft_gib < 1.8     # paper ~1.4 GB

    def test_predictors_negligible(self):
        from repro.core.predictor import PredictorBank

        bank = PredictorBank(32, feature_dim=12, hidden_dim=512)
        model = MemoryModel(get_model_spec("llama2-7b"),
                            predictor_params=bank.total_params)
        assert 300 < model.predictors_kib < 900  # paper quotes ~416 KB (no biases)

    def test_kv_growth_linear(self):
        model = MemoryModel(get_model_spec("llama2-7b"))
        assert model.kv_gib(2000) == pytest.approx(2 * model.kv_gib(1000))

    def test_timeline_monotone(self):
        model = MemoryModel(get_model_spec("llama2-7b"), use_draft=True)
        timeline = model.timeline(3000, points=10)
        assert all(b >= a for a, b in zip(timeline.gib, timeline.gib[1:]))

    def test_overhead_vs_baseline(self):
        spec = get_model_spec("llama2-7b")
        base = MemoryModel(spec)
        specee = MemoryModel(spec, use_draft=True, predictor_params=100_000)
        assert specee.overhead_vs(base) > 0.5
