"""Load-adaptive speculation control: policies, controller actuation,
engine-level token identity of the neutral policy, and seeded bandit
determinism."""

import numpy as np
import pytest

from repro.eval.harness import build_rig
from repro.serving import (
    CONTROL_POLICIES,
    ControlAction,
    LoadSignal,
    PressureControlPolicy,
    SpeculationController,
    StaticControlPolicy,
    ThompsonBanditPolicy,
    make_control_policy,
    poisson_trace,
)
from repro.serving.control import DEFAULT_ARM_GRID, NEUTRAL_ACTION


def signal(queue_depth=0, batch_capacity=4, kv_pressure=0.0,
           mean_slack_s=float("inf"), **kw):
    return LoadSignal(queue_depth=queue_depth, batch_capacity=batch_capacity,
                      kv_pressure=kv_pressure, mean_slack_s=mean_slack_s, **kw)


class TestLoadSignal:
    def test_load_ratio_and_backlog(self):
        s = LoadSignal(queue_depth=6, batch_capacity=4,
                       backlog_tokens=100, per_token_s=0.01)
        assert s.load_ratio == pytest.approx(1.5)
        assert s.backlog_s == pytest.approx(1.0)

    def test_pressure_is_worst_of_queue_and_kv(self):
        assert signal(queue_depth=2).pressure == pytest.approx(0.5)
        assert signal(queue_depth=2, kv_pressure=0.9).pressure == pytest.approx(0.9)

    def test_blown_deadline_bumps_to_overload(self):
        s = signal(queue_depth=0, mean_slack_s=-0.1)
        assert s.pressure >= PressureControlPolicy.OVERLOAD_RATIO


class TestRegistry:
    def test_registry_names(self):
        assert set(CONTROL_POLICIES) == {"static", "pressure", "bandit"}

    def test_make_by_name_and_passthrough(self):
        assert isinstance(make_control_policy("static"), StaticControlPolicy)
        assert isinstance(make_control_policy("pressure"), PressureControlPolicy)
        bandit = make_control_policy("bandit", seed=3)
        assert isinstance(bandit, ThompsonBanditPolicy)
        assert bandit.seed == 3
        assert make_control_policy(bandit) is bandit

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown control policy"):
            make_control_policy("greedy")


class TestStaticPolicy:
    def test_always_neutral(self):
        policy = StaticControlPolicy()
        for depth in (0, 4, 100):
            assert policy.decide(signal(queue_depth=depth)).is_neutral


class TestPressurePolicy:
    def test_bands(self):
        policy = PressureControlPolicy()
        assert policy.decide(signal(queue_depth=0)) == policy.IDLE_ACTION
        assert policy.decide(signal(queue_depth=4)) == policy.BUSY_ACTION
        assert policy.decide(signal(queue_depth=12)) == policy.OVERLOAD_ACTION

    def test_monotone_in_every_congestion_input(self):
        """More backlog never raises the exit threshold or deepens the
        draft: offset and draft length are non-increasing along any path of
        increasing queue depth, KV pressure or shrinking slack."""
        policy = PressureControlPolicy()
        controller = SpeculationController("pressure", k=4, base_threshold=0.4)
        signals = [signal(queue_depth=d, kv_pressure=kv, mean_slack_s=slack)
                   for d in (0, 2, 4, 6, 12, 40)
                   for kv in (0.0, 0.5, 1.0)
                   for slack in (float("inf"), 1.0, 0.0, -0.5)]
        signals.sort(key=lambda s: s.pressure)
        actions = [policy.decide(s) for s in signals]
        for before, after in zip(actions, actions[1:]):
            assert after.threshold_offset <= before.threshold_offset
            assert (controller.draft_len_of(after)
                    <= controller.draft_len_of(before))

    def test_overload_still_strict_not_loose(self):
        """The calibrated overload action raises the bar (positive offset)
        and narrows the draft — the verify-sparing direction."""
        action = PressureControlPolicy().decide(signal(queue_depth=40))
        assert action.threshold_offset > 0
        assert action.draft_len is not None and action.draft_len < 4


class TestBanditPolicy:
    def test_same_seed_same_arm_sequence(self):
        a = ThompsonBanditPolicy(seed=11)
        b = ThompsonBanditPolicy(seed=11)
        for policy in (a, b):
            for rid in range(40):
                policy.assign(rid, signal(queue_depth=rid % 9))
        assert a.arm_history == b.arm_history

    def test_different_seed_diverges(self):
        a = ThompsonBanditPolicy(seed=1)
        b = ThompsonBanditPolicy(seed=2)
        for policy in (a, b):
            for rid in range(40):
                policy.assign(rid, signal())
        assert a.arm_history != b.arm_history

    def test_reset_replays_identically(self):
        policy = ThompsonBanditPolicy(seed=5)
        first = [policy.assign(rid, signal()) for rid in range(20)]
        history = list(policy.arm_history)
        policy.reset()
        second = [policy.assign(rid, signal()) for rid in range(20)]
        assert policy.arm_history == history
        assert first == second

    def test_reward_concentrates_on_paying_arm(self):
        """With one arm consistently rewarded, exploitation converges on it."""
        policy = ThompsonBanditPolicy(seed=0, exploration=0.2)
        paying = 3
        for rid in range(300):
            policy.assign(rid, signal())
            arm = policy._arm_of[rid]
            policy.reward(rid, 2.0 if arm == paying else 0.1)
        tail = policy.arm_history[-60:]
        assert tail.count(paying) > len(tail) * 0.6

    def test_reward_unknown_request_is_noop(self):
        policy = ThompsonBanditPolicy(seed=0)
        before = policy._means.copy()
        policy.reward(999, 5.0)
        assert np.array_equal(policy._means, before)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThompsonBanditPolicy(arms=())
        with pytest.raises(ValueError):
            ThompsonBanditPolicy(exploration=0.0)

    def test_default_grid_contains_neutral_arm(self):
        assert NEUTRAL_ACTION in DEFAULT_ARM_GRID


class TestSpeculationController:
    def test_threshold_and_draft_clamping(self):
        controller = SpeculationController("static", k=4, base_threshold=0.4)
        assert controller.threshold_of(ControlAction(+10.0)) == 0.95
        assert controller.threshold_of(ControlAction(-10.0)) == 0.05
        assert controller.draft_len_of(ControlAction(0.0, 99)) == 4
        assert controller.draft_len_of(ControlAction(0.0, 0)) == 1
        assert controller.draft_len_of(NEUTRAL_ACTION) == 4

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            SpeculationController("static", k=0, base_threshold=0.4)
        with pytest.raises(ValueError):
            SpeculationController("static", k=4, base_threshold=0.4,
                                  min_threshold=0.9, max_threshold=0.1)

    def test_overrides_follow_tick_action(self):
        controller = SpeculationController("pressure", k=4, base_threshold=0.4)
        controller.observe(signal(queue_depth=12))
        thresholds, drafts = controller.overrides([1, 2, 3])
        assert thresholds == [pytest.approx(0.75)] * 3
        assert drafts == [2] * 3
        assert controller.mean_threshold_offset() == pytest.approx(0.35)

    def test_per_request_assignment_is_sticky(self):
        controller = SpeculationController("bandit", k=4, base_threshold=0.4,
                                           seed=2)
        controller.observe(signal(queue_depth=6))
        first, _ = controller.overrides([7])
        for _ in range(5):
            again, _ = controller.overrides([7])
            assert again == first
        controller.finish(7, tokens=10, latency_s=0.5, met_slo=True)
        assert 7 not in controller._assigned

    def test_missed_slo_earns_zero(self):
        controller = SpeculationController("bandit", k=4, base_threshold=0.4)
        controller.observe(signal(queue_depth=1, per_token_s=0.01))
        controller.overrides([1, 2])
        policy = controller.policy
        arm_miss = policy._arm_of[1]
        controller.finish(1, tokens=10, latency_s=0.1, met_slo=False)
        assert policy._means[arm_miss] <= 1.0  # pulled toward 0 from prior
        arm_hit = policy._arm_of[2]
        controller.finish(2, tokens=20, latency_s=0.1, met_slo=True)
        assert policy._counts[arm_hit] == 1

    def test_begin_resets_offset_stats(self):
        controller = SpeculationController("pressure", k=4, base_threshold=0.4)
        controller.observe(signal(queue_depth=12))
        controller.overrides([1])
        assert controller.mean_threshold_offset() != 0.0
        controller.begin()
        assert controller.mean_threshold_offset() == 0.0


@pytest.fixture
def rig(control_rig):
    """Alias onto the shared session-scoped rig (see tests/conftest.py)."""
    return control_rig


class TestEndToEnd:
    FLEET = dict(batch_capacity=4, kv_blocks=24, block_size=4,
                 chunk_prefill_tokens=16)

    def trace(self, rig, serving, rate=12.0, n=12):
        per_token_s = serving.latency.full_depth_token_time()
        return poisson_trace(n, rate, rig.model.vocab_size, seed=9,
                             prompt_len_range=(4, 16), slo_scale=2.5,
                             per_token_s=per_token_s, priority_levels=2)

    def test_static_control_is_token_identical_to_no_controller(self):
        rig = build_rig("vicuna-7b", seed=0, train_prompts=4, train_tokens=20,
                        predictor_hidden=32, epochs=4)
        plain = rig.async_serving_engine(scheduling="edf", **self.FLEET)
        controlled = rig.async_serving_engine(scheduling="edf", control="static",
                                              **self.FLEET)
        trace = self.trace(rig, plain)
        report_plain = plain.run(trace)
        report_controlled = controlled.run(trace)
        assert report_controlled.control == "static"
        for request in trace:
            assert (report_controlled.results[request.request_id].tokens
                    == report_plain.results[request.request_id].tokens)
        assert report_controlled.mean_threshold_offset == 0.0

    def test_bandit_run_is_seed_deterministic(self, rig):
        def run():
            serving = rig.async_serving_engine(scheduling="edf",
                                               control="bandit",
                                               control_seed=4, **self.FLEET)
            trace = self.trace(rig, serving)
            report = serving.run(trace)
            return ([report.results[r.request_id].tokens for r in trace],
                    serving.controller.policy.arm_history)

        tokens_a, history_a = run()
        tokens_b, history_b = run()
        assert tokens_a == tokens_b
        assert history_a == history_b
        assert history_a, "bandit never assigned an arm"

    def test_pressure_actuates_under_load(self, rig):
        serving = rig.async_serving_engine(scheduling="edf",
                                           control="pressure", **self.FLEET)
        trace = self.trace(rig, serving, rate=40.0, n=16)
        report = serving.run(trace)
        assert report.control == "pressure"
        assert report.mean_threshold_offset > 0.0

    def test_fleet_report_carries_control_fields(self, rig):
        fleet = rig.router_fleet(2, route="round_robin", scheduling="edf",
                                 control="pressure", **self.FLEET)
        per_token_s = fleet.replicas[0].latency.full_depth_token_time()
        trace = poisson_trace(10, 12.0, rig.model.vocab_size, seed=9,
                              slo_scale=2.5, per_token_s=per_token_s)
        report = fleet.run(trace)
        assert report.control == "pressure"
        assert len(report.replica_threshold_offsets) == 2
