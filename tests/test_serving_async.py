"""Async serving engine: preemption determinism (swap vs recompute resume),
chunked-prefill scheduling edges, optimistic-admission rejection semantics,
arrival workloads, and the KV-swap cost plumbing."""

import math

import numpy as np
import pytest

from repro.config import get_model_spec
from repro.eval.harness import build_rig
from repro.hardware.energy import EVENT_INTENSITY
from repro.hardware.latency import LatencyModel
from repro.hardware.ledger import CostLedger, Event
from repro.serving import (
    ContinuousBatchScheduler,
    PagedKVCache,
    Request,
    bursty_trace,
    poisson_trace,
)

# Same asset-cache key as the other serving tests, so training happens once.
RIG_KWARGS = dict(train_prompts=6, train_tokens=30, predictor_hidden=128, epochs=10)


@pytest.fixture(scope="module")
def rig():
    return build_rig("llama2-7b", **RIG_KWARGS)


def tight_engine(rig, **overrides):
    """An async engine whose KV pool is far below the batch's worst case, so
    optimistic admission must preempt to make progress."""
    kwargs = dict(batch_capacity=4, kv_blocks=8, block_size=4,
                  admission="optimistic", preemption="auto",
                  chunk_prefill_tokens=8)
    kwargs.update(overrides)
    return rig.async_serving_engine(**kwargs)


def burst_requests(n=4, tokens=16, slo_s=None):
    return [Request(i, [i + 3, 2 * i + 1, (5 * i) % 200 + 2], tokens,
                    arrival_s=0.0, slo_s=slo_s) for i in range(n)]


def reference_tokens(rig, requests):
    engine = rig.specee_engine("two_level")
    return {r.request_id: engine.generate(r.prompt, r.max_new_tokens)
            for r in requests}


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------
class TestWorkloads:
    def test_poisson_deterministic_and_sorted(self):
        a = poisson_trace(20, 5.0, 512, seed=3)
        b = poisson_trace(20, 5.0, 512, seed=3)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.prompt for r in a] == [r.prompt for r in b]
        arrivals = [r.arrival_s for r in a]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0
        assert len(a) == 20

    def test_poisson_rate_and_ranges(self):
        trace = poisson_trace(200, 8.0, 512, seed=1,
                              prompt_len_range=(4, 10),
                              max_new_tokens_range=(16, 32))
        rate = trace.offered_rate()
        assert 5.0 < rate < 12.0  # loose: 200 samples of Exp(1/8)
        for r in trace:
            assert 4 <= len(r.prompt) <= 10
            assert 16 <= r.max_new_tokens <= 32
            assert r.slo_s is not None and r.slo_s > 0
            assert r.deadline_s == pytest.approx(r.arrival_s + r.slo_s)

    def test_poisson_without_slo(self):
        trace = poisson_trace(5, 2.0, 512, slo_scale=None)
        assert all(r.slo_s is None for r in trace)

    def test_bursty_structure(self):
        trace = bursty_trace(12, burst_size=4, burst_gap_s=1.0, vocab_size=512)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        for i, arrival in enumerate(arrivals):
            assert arrival == pytest.approx((i // 4) * 1.0)

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            poisson_trace(0, 5.0, 512)
        with pytest.raises(ValueError):
            poisson_trace(5, -1.0, 512)
        with pytest.raises(ValueError):
            poisson_trace(5, 5.0, 512, max_new_tokens_range=(8, 4))
        with pytest.raises(ValueError):
            bursty_trace(5, 0, 1.0, 512)
        with pytest.raises(ValueError):
            bursty_trace(5, 2, -1.0, 512)

    def test_priorities_span_levels(self):
        trace = poisson_trace(50, 5.0, 512, priority_levels=3, seed=2)
        priorities = {r.priority for r in trace}
        assert priorities == {0, 1, 2}


# ---------------------------------------------------------------------------
# paged-KV swap
# ---------------------------------------------------------------------------
class TestPagedKVSwap:
    def make_cache(self):
        cache = PagedKVCache(n_blocks=6, block_size=2, n_kv_heads=2, head_dim=3)
        cache.add_sequence(7)
        rng = np.random.default_rng(0)
        for _ in range(5):  # 3 blocks, last one half full
            kv = rng.normal(size=(2, 3))
            cache.append(7, kv, 2 * kv)
        return cache

    def test_swap_roundtrip_bit_exact(self):
        cache = self.make_cache()
        k0, v0 = cache.gather(7)
        moved = cache.swap_out(7)
        assert moved == 5
        assert cache.blocks_in_use() == 0
        assert cache.allocator.free_blocks == 6
        assert cache.host_tokens() == 5
        assert cache.is_swapped(7)
        assert cache.swap_in(7) == 5
        assert cache.host_tokens() == 0
        k1, v1 = cache.gather(7)
        assert np.array_equal(k0, k1) and np.array_equal(v0, v1)
        assert cache.length(7) == 5

    def test_swap_out_twice_raises(self):
        cache = self.make_cache()
        cache.swap_out(7)
        with pytest.raises(ValueError, match="already swapped"):
            cache.swap_out(7)

    def test_swap_in_without_swap_out_raises(self):
        cache = self.make_cache()
        with pytest.raises(KeyError):
            cache.swap_in(7)

    def test_swap_in_into_full_pool_raises_and_keeps_host_copy(self):
        cache = self.make_cache()
        cache.swap_out(7)
        cache.add_sequence(8)
        for _ in range(9):  # 5 of 6 blocks
            cache.append(8, np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(MemoryError):
            cache.swap_in(7)
        assert cache.is_swapped(7)  # host copy intact, retry later is legal
        assert cache.host_tokens() == 5


# ---------------------------------------------------------------------------
# ledger snapshot/delta + swap pricing
# ---------------------------------------------------------------------------
class TestLedgerAndPricing:
    def test_snapshot_delta(self):
        ledger = CostLedger()
        ledger.add(Event.DECODER_LAYER, calls=3)
        snap = ledger.snapshot()
        ledger.add(Event.DECODER_LAYER, calls=2)
        ledger.add(Event.PREDICTOR)
        ledger.tokens_generated += 1
        delta = ledger.delta_since(snap)
        assert delta.calls(Event.DECODER_LAYER) == 2
        assert delta.calls(Event.PREDICTOR) == 1
        assert delta.tokens_generated == 1
        assert ledger.calls(Event.DECODER_LAYER) == 5  # original untouched

    def test_drop(self):
        ledger = CostLedger()
        ledger.add(Event.DECODER_LAYER, calls=3)
        ledger.drop(Event.DECODER_LAYER)
        assert ledger.calls(Event.DECODER_LAYER) == 0
        ledger.drop(Event.DECODER_LAYER)  # idempotent

    def test_kv_swap_priced(self):
        latency = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "vllm")
        assert latency.kv_swap_time(64) > latency.kv_swap_time(1) > 0
        ledger = CostLedger()
        ledger.add(Event.KV_SWAP, calls=2, units=128)
        ledger.tokens_generated = 1
        priced = latency.price(ledger)
        assert priced.per_event_s[Event.KV_SWAP] > 0
        assert Event.KV_SWAP in EVENT_INTENSITY

    def test_preempt_costs_tradeoff(self):
        latency = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "vllm")
        costs = latency.preempt_costs(tokens=4, context_tokens=8)
        assert set(costs) == {"swap", "recompute"}
        # Short context: recompute is cheap.  Long swapped KV: swap traffic
        # grows linearly while recompute stays one prefill pass.
        short = latency.preempt_costs(tokens=2, context_tokens=4)
        long = latency.preempt_costs(tokens=4096, context_tokens=8192)
        assert short["recompute"] < short["swap"] or short["swap"] < short["recompute"]
        assert long["swap"] / long["recompute"] > short["swap"] / short["recompute"]


# ---------------------------------------------------------------------------
# preemption determinism
# ---------------------------------------------------------------------------
class TestPreemptionDeterminism:
    @pytest.mark.parametrize("mode", ["swap", "recompute", "auto"])
    def test_resume_token_identical(self, rig, mode):
        requests = burst_requests()
        refs = reference_tokens(rig, requests)
        engine = tight_engine(rig, preemption=mode)
        report = engine.run(requests)
        assert report.preemptions > 0, "config must actually exercise preemption"
        for request in requests:
            result = report.results[request.request_id]
            ref = refs[request.request_id]
            assert result.tokens == ref.tokens
            assert result.exit_layers == ref.exit_layers
        if mode == "swap":
            assert report.swaps == report.preemptions
            assert report.serving_ledger.units(Event.KV_SWAP) > 0
        if mode == "recompute":
            assert report.recomputes == report.preemptions
            assert report.serving_ledger.units(Event.KV_SWAP) == 0

    def test_swap_and_recompute_agree(self, rig):
        requests = burst_requests()
        swap = tight_engine(rig, preemption="swap").run(burst_requests())
        recompute = tight_engine(rig, preemption="recompute").run(burst_requests())
        for request in requests:
            assert (swap.results[request.request_id].tokens
                    == recompute.results[request.request_id].tokens)
        # Recompute re-runs prefill over prompt+generated at every resume.
        assert (recompute.serving_ledger.units(Event.PREFILL_LAYER)
                > swap.serving_ledger.units(Event.PREFILL_LAYER))

    def test_pool_clean_after_run(self, rig):
        engine = tight_engine(rig)
        engine.run(burst_requests())
        assert engine.cache.blocks_in_use() == 0
        assert engine.cache.host_tokens() == 0
        assert engine.cache.allocator.free_blocks == 8

    def test_batched_layers_match_sequential(self, rig):
        engine = tight_engine(rig)
        report = engine.run(burst_requests())
        assert (report.serving_ledger.units(Event.BATCH_DECODER_LAYER)
                == report.sequential_ledger.calls(Event.DECODER_LAYER))
        assert report.serving_ledger.calls(Event.DECODER_LAYER) == 0
        assert (report.serving_ledger.tokens_generated
                == report.sequential_ledger.tokens_generated == report.total_tokens)

    def test_low_priority_is_the_victim(self, rig):
        requests = [Request(i, [i + 3, i + 5], 16, priority=(1 if i == 0 else 0))
                    for i in range(4)]
        engine = tight_engine(rig)
        report = engine.run(requests)
        assert report.preemptions > 0
        assert report.metrics[0].preemptions == 0  # the VIP was never evicted


# ---------------------------------------------------------------------------
# chunked prefill
# ---------------------------------------------------------------------------
class TestChunkedPrefill:
    def test_chunking_delays_first_decode_not_tokens(self, rig):
        prompt = list(range(2, 14))  # 12 tokens
        request = [Request(0, prompt, 8)]
        ref = rig.specee_engine("two_level").generate(prompt, 8)
        chunked = rig.async_serving_engine(
            batch_capacity=2, kv_blocks=16, block_size=4,
            chunk_prefill_tokens=4).run(request)
        # Two prefill-only ticks; the third chunk finishes the prompt, so the
        # first decode shares that tick; then 7 more decode ticks.
        assert chunked.results[0].tokens == ref.tokens
        assert chunked.n_steps == 2 + 8
        assert chunked.batch_occupancy[:2] == [0, 0]
        assert all(o == 1 for o in chunked.batch_occupancy[2:])

    def test_prefill_completing_mid_chunk_decodes_same_tick(self, rig):
        request = [Request(0, [4, 5, 6], 6)]  # prompt shorter than the chunk
        report = rig.async_serving_engine(
            batch_capacity=2, kv_blocks=16, block_size=4,
            chunk_prefill_tokens=8).run(request)
        assert report.n_steps == 6  # no separate prefill tick
        assert report.batch_occupancy[0] == 1

    def test_unchunked_prefill_monopolises_the_tick(self, rig):
        requests = [Request(0, list(range(2, 10)), 6, arrival_s=0.0),
                    Request(1, list(range(3, 11)), 6, arrival_s=0.001)]
        report = rig.async_serving_engine(
            batch_capacity=2, kv_blocks=16, block_size=4,
            chunk_prefill_tokens=None).run(requests)
        # Request 1 arrives mid-run; its (whole-prompt) prefill tick stalls
        # request 0's decode, so at least one tick decodes nobody.
        assert 0 in report.batch_occupancy[1:]
        assert len(report.results) == 2
        assert all(len(r.tokens) == 6 for r in report.results.values())

    def test_chunk_budget_shared_across_prefills(self, rig):
        requests = [Request(0, list(range(2, 12)), 4),  # 10 prompt tokens
                    Request(1, list(range(2, 12)), 4)]
        report = rig.async_serving_engine(
            batch_capacity=2, kv_blocks=16, block_size=4,
            chunk_prefill_tokens=10).run(requests)
        # 20 prompt tokens through a 10-token/tick budget: request 0's whole
        # prompt fills tick 0 (and it starts decoding); request 1 prefills in
        # tick 1 and joins the decode batch that same tick.
        assert report.batch_occupancy[0] == 1
        assert report.batch_occupancy[1] == 2
        assert len(report.results) == 2
        prefill_units = report.serving_ledger.units(Event.PREFILL_LAYER)
        n_layers = 32
        assert prefill_units == n_layers * 20

    def test_ledger_prefill_units_cover_all_chunks(self, rig):
        prompt = list(range(2, 15))  # 13 tokens -> chunks of 5,5,3
        report = rig.async_serving_engine(
            batch_capacity=1, kv_blocks=16, block_size=4,
            chunk_prefill_tokens=5).run([Request(0, prompt, 4)])
        assert report.serving_ledger.units(Event.PREFILL_LAYER) == 32 * 13
        assert report.serving_ledger.calls(Event.PREFILL_LAYER) == 32 * 3


# ---------------------------------------------------------------------------
# admission / rejection / edge cases
# ---------------------------------------------------------------------------
class TestAsyncAdmission:
    def test_oversized_request_rejected_not_hung(self, rig):
        requests = [Request(0, [3, 4], 8),
                    Request(1, [5, 6], 1000),  # 250 blocks in an 8-block pool
                    Request(2, [7, 8], 8)]
        report = tight_engine(rig).run(requests)
        assert set(report.results) == {0, 2}
        assert 1 in report.rejected
        assert "wait forever" in report.rejected[1]

    def test_sync_scheduler_submit_rejects_oversized(self, rig):
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=2, block_size=4)
        scheduler = ContinuousBatchScheduler(
            serving.engine, serving.cache, serving.policy, serving.scheduler_factory)
        with pytest.raises(MemoryError, match="never be admitted"):
            scheduler.submit(Request(0, [1, 2], 100))

    def test_never_preempt_raises_on_exhaustion(self, rig):
        engine = tight_engine(rig, preemption="never")
        with pytest.raises(MemoryError, match="enable preemption"):
            engine.run(burst_requests())

    def test_engine_survives_a_failed_run(self, rig):
        """A run that dies mid-flight must not leak blocks or stale sequence
        ids into the next run on the same engine."""
        engine = tight_engine(rig, preemption="never")
        with pytest.raises(MemoryError):
            engine.run(burst_requests())
        small = [Request(0, [3, 4], 4), Request(1, [5, 6], 4)]
        report = engine.run(small)
        assert set(report.results) == {0, 1}
        assert engine.cache.blocks_in_use() == 0
        assert engine.cache.allocator.free_blocks == 8

    def test_reserve_mode_never_needs_preemption(self, rig):
        engine = tight_engine(rig, admission="reserve", preemption="never",
                              chunk_prefill_tokens=None)
        report = engine.run(burst_requests())
        assert len(report.results) == 4
        assert report.preemptions == 0

    def test_empty_trace(self, rig):
        report = tight_engine(rig).run([])
        assert report.results == {} and report.n_steps == 0
        assert math.isnan(report.slo_attainment)

    def test_idle_gap_advances_clock(self, rig):
        requests = [Request(0, [3, 4], 4, arrival_s=0.0),
                    Request(1, [5, 6], 4, arrival_s=5.0)]
        report = rig.async_serving_engine(
            batch_capacity=2, kv_blocks=16, block_size=4).run(requests)
        assert len(report.results) == 2
        assert report.makespan_s > 5.0
        assert report.metrics[1].finish_s > 5.0

    def test_invalid_modes_raise(self, rig):
        with pytest.raises(ValueError):
            rig.async_serving_engine(admission="yolo")
        with pytest.raises(ValueError):
            rig.async_serving_engine(preemption="sometimes")
        with pytest.raises(ValueError):
            rig.async_serving_engine(chunk_prefill_tokens=0)


class TestSLOAccounting:
    def test_generous_slo_met_tight_slo_missed(self, rig):
        requests = [Request(0, [3, 4], 4, slo_s=1e6),
                    Request(1, [5, 6], 4, slo_s=1e-9)]
        report = rig.async_serving_engine(
            batch_capacity=2, kv_blocks=16, block_size=4).run(requests)
        assert report.metrics[0].met_slo is True
        assert report.metrics[1].met_slo is False
        assert report.slo_attainment == 0.5

    def test_no_slo_requests_give_nan(self, rig):
        report = rig.async_serving_engine(
            batch_capacity=2, kv_blocks=16, block_size=4).run(
            [Request(0, [3, 4], 4)])
        assert report.metrics[0].met_slo is None
        assert math.isnan(report.slo_attainment)

    def test_rejected_request_counts_as_missed(self, rig):
        requests = [Request(0, [3, 4], 4, slo_s=1e6),
                    Request(1, [5, 6], 1000, slo_s=1e6)]
        report = tight_engine(rig).run(requests)
        assert report.slo_attainment == 0.5

    def test_rejected_request_without_slo_does_not_fake_attainment(self, rig):
        requests = [Request(0, [3, 4], 4), Request(1, [5, 6], 1000)]  # no SLOs
        report = tight_engine(rig).run(requests)
        assert 1 in report.rejected
        assert math.isnan(report.slo_attainment)

    def test_clock_and_ledger_consistency(self, rig):
        report = tight_engine(rig).run(burst_requests(slo_s=10.0))
        assert report.makespan_s == pytest.approx(sum(report.tick_seconds))
        assert len(report.tick_seconds) == report.n_steps
        assert report.throughput_tps > 0
        assert report.sequential_tps > 0

    def test_priced_speedup_over_sequential(self, rig):
        requests = [Request(i, [i + 2, i + 9], 24, arrival_s=0.0) for i in range(6)]
        report = rig.async_serving_engine(
            batch_capacity=6, kv_blocks=64, block_size=4).run(requests)
        assert report.speedup > 1.5  # batching pays on the modelled clock
