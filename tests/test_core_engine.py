"""Integration tests for the SpecEE autoregressive engine (T1 + T2)."""

import numpy as np
import pytest

from repro.baselines import DenseEngine
from repro.config import SimDims, SpecEEConfig
from repro.core import (
    PredictorBank,
    SpecEEEngine,
    harvest_training_corpus,
    make_scheduler,
    train_predictor_bank,
)
from repro.core.scheduling import OfflineScheduler, profile_exit_frequencies
from repro.hardware.ledger import Event
from repro.model.draft import Speculator
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM


def build_stack(transient_rate=None, seed=42, hidden=64):
    profile = get_profile("llama2-7b")
    if transient_rate is not None:
        profile = profile.with_overrides(transient_rate=transient_rate)
    lm = SyntheticLayeredLM(profile, SimDims(), seed=seed)
    spec = Speculator(lm.oracle, k=4, hit_rate=profile.draft_hit_rate)
    prompts = [[i + 1, i + 3, (i * 7) % 500 + 1] for i in range(6)]
    corpus = harvest_training_corpus(lm, spec, prompts, tokens_per_prompt=30)
    bank = PredictorBank(lm.n_layers, feature_dim=12, hidden_dim=hidden, seed=0)
    train_predictor_bank(bank, corpus, epochs=10)
    fresh = SyntheticLayeredLM(profile, SimDims(), seed=seed)
    return profile, fresh, spec, bank


@pytest.fixture(scope="module")
def stack_no_transient():
    return build_stack(transient_rate=0.0)


@pytest.fixture(scope="module")
def stack_default():
    return build_stack()


class TestVerifiedConsistency:
    def test_specee_equals_dense_without_transients(self, stack_no_transient):
        """DESIGN.md invariant: with transient spikes disabled, verification
        makes SpecEE's output identical to the dense model's."""
        profile, lm, spec, bank = stack_no_transient
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([9, 8, 7], 100)
        dense = DenseEngine(SyntheticLayeredLM(profile, SimDims(), seed=42))
        reference = dense.generate([9, 8, 7], 100)
        assert result.tokens == reference.tokens
        assert result.avg_exit_layer < lm.n_layers - 2  # and it exits early

    def test_two_level_also_consistent(self, stack_no_transient):
        profile, lm, spec, bank = stack_no_transient
        fresh = SyntheticLayeredLM(profile, SimDims(), seed=42)
        engine = SpecEEEngine(fresh, spec, bank, SpecEEConfig())
        result = engine.generate([9, 8, 7], 100)
        dense = DenseEngine(SyntheticLayeredLM(profile, SimDims(), seed=42))
        assert result.tokens == dense.generate([9, 8, 7], 100).tokens


class TestEngineBehaviour:
    def test_exit_layers_respect_min(self, stack_default):
        profile, lm, spec, bank = stack_default
        cfg = SpecEEConfig(min_exit_layer=6)
        engine = SpecEEEngine(SyntheticLayeredLM(profile, SimDims(), seed=1),
                              spec, bank, cfg)
        result = engine.generate([1, 2, 3], 60)
        early = [e for e, r in zip(result.exit_layers, result.records) if r.early_exit]
        assert all(e >= 6 for e in early)

    def test_ledger_layer_accounting(self, stack_default):
        profile, lm, spec, bank = stack_default
        engine = SpecEEEngine(SyntheticLayeredLM(profile, SimDims(), seed=2),
                              spec, bank, SpecEEConfig())
        result = engine.generate([4, 4, 4], 50)
        expected_layers = sum(e + 1 for e in result.exit_layers)
        assert result.ledger.calls(Event.DECODER_LAYER) == expected_layers
        assert result.ledger.calls(Event.DRAFT_STEP) == 50
        assert result.ledger.tokens_generated == 50
        assert result.ledger.steps == 50

    def test_scheduling_reduces_predictor_evals(self, stack_default):
        profile, lm, spec, bank = stack_default
        all_engine = SpecEEEngine(SyntheticLayeredLM(profile, SimDims(), seed=3),
                                  spec, bank, SpecEEConfig(),
                                  scheduler=make_scheduler("all", lm.n_layers))
        res_all = all_engine.generate([5, 5, 5], 80)
        freqs = profile_exit_frequencies(res_all.exit_layers, lm.n_layers)
        two = SpecEEEngine(
            SyntheticLayeredLM(profile, SimDims(), seed=3), spec, bank, SpecEEConfig(),
            scheduler=make_scheduler("two_level", lm.n_layers,
                                     offline=OfflineScheduler(freqs), offline_top_k=4))
        res_two = two.generate([5, 5, 5], 80)
        evals_all = np.mean([r.predictor_evals for r in res_all.records])
        evals_two = np.mean([r.predictor_evals for r in res_two.records])
        assert evals_two < 0.7 * evals_all
        # ...at a small cost in exit timeliness.
        assert res_two.avg_exit_layer < res_all.avg_exit_layer + 3.0

    def test_early_exits_track_saturation(self, stack_default):
        profile, lm, spec, bank = stack_default
        engine = SpecEEEngine(SyntheticLayeredLM(profile, SimDims(), seed=4),
                              spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([6, 6, 6], 80)
        gaps = [e - s for e, s, r in zip(result.exit_layers, result.saturations,
                                         result.records) if r.early_exit]
        assert gaps and float(np.mean(gaps)) < 3.0
        assert all(g >= -5 for g in gaps)  # never exits far before saturation

    def test_teacher_forcing_records_logprobs(self, stack_default):
        profile, lm, spec, bank = stack_default
        engine = SpecEEEngine(SyntheticLayeredLM(profile, SimDims(), seed=5),
                              spec, bank, SpecEEConfig())
        refs = [7, 8, 9, 10]
        result = engine.generate([2, 2, 2], 99, force_tokens=refs)
        assert len(result.tokens) == len(refs)
        assert result.tokens == refs
        assert len(result.logprobs) == len(refs)
        assert all(lp <= 0 for lp in result.logprobs)
        assert result.perplexity >= 1.0

    def test_k_mismatch_rejected(self, stack_default):
        profile, lm, spec, bank = stack_default
        with pytest.raises(ValueError):
            SpecEEEngine(lm, spec, bank, SpecEEConfig(num_speculative=8))

    def test_unverified_mode_runs(self, stack_default):
        profile, lm, spec, bank = stack_default
        cfg = SpecEEConfig(verify_on_exit=False)
        engine = SpecEEEngine(SyntheticLayeredLM(profile, SimDims(), seed=6),
                              spec, bank, cfg)
        result = engine.generate([3, 2, 1], 40)
        assert len(result.tokens) == 40
        assert result.ledger.calls(Event.LM_HEAD_FULL) <= 40
