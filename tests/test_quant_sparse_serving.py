"""Tests for AWQ quantization, PowerInfer sparsity and paged KV serving."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.devices import get_device
from repro.quant.awq import (
    AWQQuantizer,
    QuantizedLinear,
    dequantize_groupwise,
    quantize_groupwise,
)
from repro.serving.paged_kv import BlockAllocator, PagedKVCache
from repro.sparse.powerinfer import (
    ActivationStats,
    hybrid_ffn_time,
    partition_neurons,
)


class TestGroupwiseQuant:
    def test_roundtrip_error_bounded_by_scale(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((64, 16))
        q, scales = quantize_groupwise(w, group_size=16, n_bits=4)
        recon = dequantize_groupwise(q, scales, group_size=16)
        # RTN error is at most half a quantization step per element.
        for g in range(scales.shape[0]):
            lo, hi = g * 16, (g + 1) * 16
            err = np.abs(w[lo:hi] - recon[lo:hi])
            assert np.all(err <= scales[g] / 2 + 1e-12)

    def test_levels_within_int4(self):
        w = np.random.default_rng(1).standard_normal((32, 8)) * 5
        q, _ = quantize_groupwise(w, group_size=8, n_bits=4)
        assert q.min() >= -8 and q.max() <= 7

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_any_group_size_roundtrips_shape(self, group_size):
        w = np.random.default_rng(group_size).standard_normal((40, 6))
        q, scales = quantize_groupwise(w, group_size=group_size)
        recon = dequantize_groupwise(q, scales, group_size=group_size)
        assert recon.shape == w.shape

    def test_smaller_groups_lower_error(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((128, 8)) * np.exp(rng.standard_normal((128, 1)))
        def err(gs):
            q, s = quantize_groupwise(w, group_size=gs)
            return float(np.mean((w - dequantize_groupwise(q, s, gs)) ** 2))
        assert err(16) <= err(128) + 1e-12

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            quantize_groupwise(np.zeros(4), 8)
        with pytest.raises(ValueError):
            quantize_groupwise(np.zeros((4, 4)), 0)


class TestAWQ:
    def test_activation_aware_beats_plain_rtn_on_skewed_channels(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((64, 16)) * 0.1
        # A few salient input channels with large weights AND activations.
        salient = rng.choice(64, size=4, replace=False)
        w[salient] *= 8.0
        acts = rng.standard_normal((128, 64)) * 0.5
        acts[:, salient] *= 6.0
        quantizer = AWQQuantizer(group_size=64)
        awq = quantizer.quantize(w, acts)
        plain_q, plain_s = quantize_groupwise(w, group_size=64)
        plain = QuantizedLinear(q=plain_q, scales=plain_s, group_size=64)
        err_awq = AWQQuantizer.reconstruction_error(w, awq, acts)
        err_rtn = AWQQuantizer.reconstruction_error(w, plain, acts)
        assert err_awq <= err_rtn * 1.001

    def test_storage_bytes_about_half_byte_per_weight(self):
        w = np.random.default_rng(4).standard_normal((128, 128))
        q, s = quantize_groupwise(w, group_size=128)
        lin = QuantizedLinear(q=q, scales=s, group_size=128)
        assert lin.storage_bytes < w.size * 0.6

    def test_quantized_linear_callable(self):
        rng = np.random.default_rng(5)
        w = rng.standard_normal((16, 4))
        quantizer = AWQQuantizer(group_size=8)
        lin = quantizer.quantize(w, rng.standard_normal((32, 16)))
        x = rng.standard_normal((3, 16))
        assert np.allclose(lin(x), x @ w, atol=0.5)

    def test_calibration_shape_mismatch(self):
        with pytest.raises(ValueError):
            AWQQuantizer().quantize(np.zeros((8, 2)), np.zeros((4, 6)))


class TestPowerInfer:
    def test_stats_from_activations(self):
        acts = np.array([[1.0, 0.0, 2.0], [0.5, 0.0, 0.0]])
        stats = ActivationStats.from_activations(acts)
        assert np.allclose(stats.frequencies, [1.0, 0.0, 0.5])

    def test_power_law_profile_skewed(self):
        stats = ActivationStats.power_law(1000, seed=0)
        top_quarter = np.sort(stats.frequencies)[-250:].mean()
        bottom_half = np.sort(stats.frequencies)[:500].mean()
        assert top_quarter > 4 * bottom_half

    def test_partition_respects_budget(self):
        stats = ActivationStats.power_law(100, seed=1)
        part = partition_neurons(stats, gpu_budget_fraction=0.3)
        assert len(part.hot_index) == 30
        assert part.hot_fraction == pytest.approx(0.3)
        # Hot set must contain the most active neurons.
        hottest = np.argsort(-stats.frequencies)[:10]
        assert set(hottest) <= set(part.hot_index)

    def test_cold_rate_lower_than_hot(self):
        stats = ActivationStats.power_law(500, seed=2)
        part = partition_neurons(stats, 0.26)
        assert part.expected_active_cold_fraction < stats.frequencies.mean()

    def test_hybrid_time_sparsity_pays_off(self):
        gpu, cpu = get_device("rtx4060-laptop"), get_device("i7-13650hx")
        stats = ActivationStats.power_law(1000, seed=3)
        part = partition_neurons(stats, 0.8)
        gpu_t, cpu_t = hybrid_ffn_time(part, ffn_bytes=270e6, gpu=gpu, cpu=cpu)
        # Cold neurons are sparse-activated, so the CPU share stays small.
        assert cpu_t < 4 * gpu_t

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            partition_neurons(ActivationStats.power_law(10), 1.5)


class TestPagedKV:
    def test_allocator_exhaustion_and_free(self):
        alloc = BlockAllocator(2)
        a = alloc.allocate()
        alloc.allocate()
        with pytest.raises(MemoryError):
            alloc.allocate()
        alloc.free(a)
        assert alloc.allocate() == a
        with pytest.raises(ValueError):
            alloc.free(99)

    def test_gather_matches_contiguous_reference(self):
        rng = np.random.default_rng(0)
        cache = PagedKVCache(n_blocks=8, block_size=3, n_kv_heads=2, head_dim=4)
        cache.add_sequence(0)
        ref_k, ref_v = [], []
        for _ in range(8):  # crosses block boundaries
            k = rng.standard_normal((2, 4))
            v = rng.standard_normal((2, 4))
            cache.append(0, k, v)
            ref_k.append(k)
            ref_v.append(v)
        ks, vs = cache.gather(0)
        assert np.allclose(ks, np.stack(ref_k))
        assert np.allclose(vs, np.stack(ref_v))

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_multi_sequence_isolation(self, ops):
        rng = np.random.default_rng(42)
        cache = PagedKVCache(n_blocks=64, block_size=2, n_kv_heads=1, head_dim=2)
        reference = {s: [] for s in range(3)}
        for s in range(3):
            cache.add_sequence(s)
        for seq in ops:
            kv = rng.standard_normal((1, 2))
            cache.append(seq, kv, kv)
            reference[seq].append(kv)
        for s in range(3):
            ks, _ = cache.gather(s)
            assert len(ks) == len(reference[s])
            if reference[s]:
                assert np.allclose(ks, np.stack(reference[s]))

    def test_free_sequence_releases_blocks(self):
        cache = PagedKVCache(n_blocks=2, block_size=1, n_kv_heads=1, head_dim=2)
        cache.add_sequence(0)
        cache.append(0, np.zeros((1, 2)), np.zeros((1, 2)))
        cache.append(0, np.zeros((1, 2)), np.zeros((1, 2)))
        assert cache.allocator.free_blocks == 0
        cache.free_sequence(0)
        assert cache.allocator.free_blocks == 2

    def test_utilization_high_for_paged(self):
        cache = PagedKVCache(n_blocks=16, block_size=4, n_kv_heads=1, head_dim=2)
        cache.add_sequence(0)
        for _ in range(9):
            cache.append(0, np.zeros((1, 2)), np.zeros((1, 2)))
        assert cache.utilization() == pytest.approx(9 / 12)

    def test_duplicate_sequence_rejected(self):
        cache = PagedKVCache(4, 2, 1, 2)
        cache.add_sequence(1)
        with pytest.raises(ValueError):
            cache.add_sequence(1)

    def test_bad_kv_shape_rejected(self):
        cache = PagedKVCache(4, 2, 2, 4)
        cache.add_sequence(0)
        with pytest.raises(ValueError):
            cache.append(0, np.zeros((1, 4)), np.zeros((1, 4)))
