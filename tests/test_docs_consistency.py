"""Documentation consistency: DESIGN.md's experiment index, the experiments
registry, the benchmark files, the ledger-event reference table, the CLI
flag docs, and the public-docstring contract must stay in sync."""

import argparse
import ast
import pathlib
import re

import pytest

from repro.cli import build_parser
from repro.experiments import REGISTRY
from repro.hardware.ledger import Event
from repro.serving import (CONTROL_POLICIES, ROUTING_POLICIES,
                           SCHEDULING_POLICIES)

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDesignDoc:
    def test_design_mentions_every_experiment_module(self):
        design = (REPO / "DESIGN.md").read_text()
        for name in REGISTRY:
            module_suffix = name.split("_", 1)[0]
            assert module_suffix in design or name in design

    def test_every_registry_entry_has_a_benchmark(self):
        bench_dir = REPO / "benchmarks"
        benches = {p.stem for p in bench_dir.glob("bench_*.py")}
        for name in REGISTRY:
            assert f"bench_{name}" in benches, f"no benchmark for {name}"

    def test_module_map_covers_every_serving_module(self):
        """DESIGN.md's module map must name every repro.serving module — a
        new subsystem file that never makes it into the map is exactly the
        staleness this pass fixed."""
        design = (REPO / "DESIGN.md").read_text()
        for path in sorted((REPO / "src/repro/serving").glob("*.py")):
            if path.name == "__init__.py":
                continue
            assert path.name in design, (
                f"DESIGN.md module map does not mention {path.name}")

    def test_readme_points_to_design_and_experiments(self):
        readme = (REPO / "README.md").read_text()
        assert "DESIGN.md" in readme and "EXPERIMENTS.md" in readme

    def test_experiments_md_covers_all_artifacts(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for anchor in ("Fig. 1(a)", "Fig. 5(a)", "Fig. 7", "Fig. 8", "Fig. 10",
                       "Fig. 11", "Fig. 14", "Fig. 15", "Fig. 16", "Fig. 17",
                       "Fig. 18", "Fig. 19", "Table 1", "Table 4",
                       "Sec. 7.3.1", "Sec. 7.4"):
            assert anchor in text, f"EXPERIMENTS.md missing {anchor}"


def _cli_subparsers():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("CLI has no subcommands")


def _option_strings(parser):
    return {opt for action in parser._actions
            for opt in action.option_strings if opt.startswith("--")}


class TestLedgerEventTable:
    def test_every_event_kind_documented_in_table(self):
        """DESIGN.md's ledger-event reference must cover every Event kind."""
        design = (REPO / "DESIGN.md").read_text()
        table_rows = [line for line in design.splitlines()
                      if line.startswith("|") and "`" in line]
        for kind in Event.ALL:
            assert any(f"`{kind}`" in row for row in table_rows), (
                f"ledger event {kind!r} missing from DESIGN.md's "
                "ledger-event reference table")

    def test_table_names_only_real_events(self):
        """First-column backticked snake_case names must be Event kinds."""
        design = (REPO / "DESIGN.md").read_text()
        section = design.split("## Ledger-event reference", 1)[1]
        section = section.split("\n## ", 1)[0]
        for line in section.splitlines():
            match = re.match(r"\|\s*`([a-z_]+)`\s*\|", line)
            if match:
                assert match.group(1) in Event.ALL, (
                    f"table documents unknown event {match.group(1)!r}")


class TestCliFlagDocs:
    DOC_FILES = ("DESIGN.md", "README.md")

    def documented_flags(self):
        """Flags mentioned in repro CLI contexts across the docs."""
        flags = set()
        for name in self.DOC_FILES:
            text = (REPO / name).read_text()
            # Lines invoking the CLI, plus DESIGN.md's CLI-reference section.
            lines = [l for l in text.splitlines() if "-m repro" in l or "repro serve" in l]
            if "## CLI reference" in text:
                section = text.split("## CLI reference", 1)[1].split("\n## ", 1)[0]
                section = section.split("\n### ", 1)[0]
                lines.extend(section.splitlines())
            for line in lines:
                flags.update(re.findall(r"--[a-z][a-z0-9-]*", line))
        return flags

    def test_documented_flags_exist_in_cli(self):
        known = set()
        for sub in _cli_subparsers().values():
            known |= _option_strings(sub)
        missing = self.documented_flags() - known
        assert not missing, f"docs mention CLI flags that do not exist: {sorted(missing)}"

    def test_every_serve_flag_is_documented(self):
        serve_flags = _option_strings(_cli_subparsers()["serve"]) - {"--help"}
        undocumented = serve_flags - self.documented_flags()
        assert not undocumented, (
            f"serve flags missing from DESIGN.md/README.md: {sorted(undocumented)}")

    def test_control_flags_exist_and_are_documented(self):
        """The adaptive-control flags must exist on the serve command AND
        appear in the docs — both directions, so a rename of either side
        fails loudly."""
        control_flags = {"--control", "--control-seed"}
        serve_flags = _option_strings(_cli_subparsers()["serve"])
        assert control_flags <= serve_flags, (
            f"serve lost control flags: {sorted(control_flags - serve_flags)}")
        documented = self.documented_flags()
        assert control_flags <= documented, (
            f"control flags undocumented: {sorted(control_flags - documented)}")

    def test_fault_flags_exist_and_are_documented(self):
        """The fault-injection flags must exist on the serve command AND
        appear in the docs — both directions, so a rename of either side
        fails loudly."""
        fault_flags = {"--faults", "--fault-seed", "--no-failover"}
        serve_flags = _option_strings(_cli_subparsers()["serve"])
        assert fault_flags <= serve_flags, (
            f"serve lost fault flags: {sorted(fault_flags - serve_flags)}")
        documented = self.documented_flags()
        assert fault_flags <= documented, (
            f"fault flags undocumented: {sorted(fault_flags - documented)}")

    def test_train_exits_flags_exist_and_are_documented(self):
        """The train-exits flags must exist on the CLI AND appear in the
        docs — both directions, so a rename of either side fails loudly."""
        expected = {"--steps", "--curriculum", "--max-layer-dropout",
                    "--early-exit-scale", "--prompts", "--max-new-tokens",
                    "--contrast"}
        train_flags = _option_strings(_cli_subparsers()["train-exits"])
        assert expected <= train_flags, (
            f"train-exits lost flags: {sorted(expected - train_flags)}")
        documented = self.documented_flags()
        undocumented = (train_flags - {"--help"}) - documented
        assert not undocumented, (
            f"train-exits flags missing from DESIGN.md/README.md: "
            f"{sorted(undocumented)}")

    def test_serve_help_explains_policy_precedence(self):
        """`repro serve --help` must carry the epilog spelling out how the
        full knob set — --sched, --route, --control, --faults and
        --prefix-share — interacts."""
        epilog = _cli_subparsers()["serve"].epilog or ""
        for flag in ("--sched", "--route", "--control", "--faults",
                     "--prefix-share"):
            assert flag in epilog, (
                f"serve epilog no longer explains {flag}")

    def test_session_flags_exist_and_are_documented(self):
        """The multi-turn chat / prefix-sharing flags must exist on the
        serve command AND appear in the docs — both directions, so a rename
        of either side fails loudly."""
        session_flags = {"--sessions", "--tenants", "--turns", "--prefix-share"}
        serve_flags = _option_strings(_cli_subparsers()["serve"])
        assert session_flags <= serve_flags, (
            f"serve lost session flags: {sorted(session_flags - serve_flags)}")
        documented = self.documented_flags()
        assert session_flags <= documented, (
            f"session flags undocumented: {sorted(session_flags - documented)}")

    def test_fleet_flags_exist_and_are_documented(self):
        """The data-parallel fleet flags must exist on the serve command AND
        appear in the docs — both directions, spelled out so a rename of
        either side fails loudly."""
        fleet_flags = {"--replicas", "--route", "--sched", "--clients",
                       "--think-time"}
        serve_flags = _option_strings(_cli_subparsers()["serve"])
        assert fleet_flags <= serve_flags, (
            f"serve lost fleet flags: {sorted(fleet_flags - serve_flags)}")
        documented = self.documented_flags()
        assert fleet_flags <= documented, (
            f"fleet flags undocumented: {sorted(fleet_flags - documented)}")


class TestPolicyDocs:
    """DESIGN.md's routing/scheduling policy tables must name exactly the
    registered policies, and every registered policy must be a valid CLI
    choice."""

    def design_table_names(self, anchor):
        design = (REPO / "DESIGN.md").read_text()
        section = design.split(anchor, 1)[1]
        names = set()
        for line in section.splitlines():
            match = re.match(r"\|\s*`([a-z_]+)`\s*\|", line)
            if match:
                names.add(match.group(1))
            elif line.startswith("## "):
                break
        return names

    def test_scheduling_policies_documented(self):
        documented = self.design_table_names("**Scheduling policies.**")
        assert set(SCHEDULING_POLICIES) <= documented, (
            f"DESIGN.md scheduling table missing "
            f"{sorted(set(SCHEDULING_POLICIES) - documented)}")

    def test_routing_policies_documented(self):
        documented = self.design_table_names("**Routing policies**")
        assert set(ROUTING_POLICIES) <= documented, (
            f"DESIGN.md routing table missing "
            f"{sorted(set(ROUTING_POLICIES) - documented)}")

    def test_control_policies_documented(self):
        documented = self.design_table_names("**Control policies.**")
        assert set(CONTROL_POLICIES) <= documented, (
            f"DESIGN.md control table missing "
            f"{sorted(set(CONTROL_POLICIES) - documented)}")

    def test_cli_choices_match_registries(self):
        serve = _cli_subparsers()["serve"]
        choices = {action.dest: set(action.choices)
                   for action in serve._actions if action.choices}
        assert choices["route"] == set(ROUTING_POLICIES)
        assert choices["sched"] == set(SCHEDULING_POLICIES)
        assert choices["control"] == set(CONTROL_POLICIES)


class TestPublicDocstrings:
    PACKAGES = ("src/repro/serving", "src/repro/distributed")

    @staticmethod
    def _missing_in(path):
        tree = ast.parse(path.read_text())
        missing = []
        if ast.get_docstring(tree) is None:
            missing.append(f"{path.name}: module")

        def check_body(body, scope):
            for node in body:
                if isinstance(node, ast.ClassDef):
                    if node.name.startswith("_"):
                        continue
                    if ast.get_docstring(node) is None:
                        missing.append(f"{path.name}: class {node.name}")
                    check_body(node.body, f"{node.name}.")
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    public = not node.name.startswith("_") or node.name in (
                        "__init__", "__post_init__")
                    if public and ast.get_docstring(node) is None:
                        missing.append(f"{path.name}: def {scope}{node.name}")

        check_body(tree.body, "")
        return missing

    @pytest.mark.parametrize("package", PACKAGES)
    def test_public_api_has_docstrings(self, package):
        """Module, public classes and public functions/methods (including
        __init__/__post_init__) of the serving and distributed packages must
        carry docstrings — the same contract the CI pydocstyle job enforces."""
        missing = []
        for path in sorted((REPO / package).glob("*.py")):
            missing.extend(self._missing_in(path))
        assert not missing, "missing docstrings:\n  " + "\n  ".join(missing)


class TestExamplesExist:
    def test_at_least_three_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        names = {p.name for p in examples}
        assert "quickstart.py" in names

    def test_examples_import_public_api_only(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert "import repro" in text or "from repro" in text
