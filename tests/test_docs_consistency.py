"""Documentation consistency: DESIGN.md's experiment index, the experiments
registry, and the benchmark files must stay in sync."""

import pathlib

import pytest

from repro.experiments import REGISTRY

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDesignDoc:
    def test_design_mentions_every_experiment_module(self):
        design = (REPO / "DESIGN.md").read_text()
        for name in REGISTRY:
            module_suffix = name.split("_", 1)[0]
            assert module_suffix in design or name in design

    def test_every_registry_entry_has_a_benchmark(self):
        bench_dir = REPO / "benchmarks"
        benches = {p.stem for p in bench_dir.glob("bench_*.py")}
        for name in REGISTRY:
            assert f"bench_{name}" in benches, f"no benchmark for {name}"

    def test_readme_points_to_design_and_experiments(self):
        readme = (REPO / "README.md").read_text()
        assert "DESIGN.md" in readme and "EXPERIMENTS.md" in readme

    def test_experiments_md_covers_all_artifacts(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for anchor in ("Fig. 1(a)", "Fig. 5(a)", "Fig. 7", "Fig. 8", "Fig. 10",
                       "Fig. 11", "Fig. 14", "Fig. 15", "Fig. 16", "Fig. 17",
                       "Fig. 18", "Fig. 19", "Table 1", "Table 4",
                       "Sec. 7.3.1", "Sec. 7.4"):
            assert anchor in text, f"EXPERIMENTS.md missing {anchor}"


class TestExamplesExist:
    def test_at_least_three_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        names = {p.name for p in examples}
        assert "quickstart.py" in names

    def test_examples_import_public_api_only(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert "import repro" in text or "from repro" in text
