"""Tests for baseline engines: dense, SVM, AdaInfer, RAEE, EAGLE, pruning."""

import numpy as np
import pytest

from repro.baselines import DenseEngine, EagleEngine, LinearSVM
from repro.baselines.adainfer import AdaInferEngine, adainfer_features, train_adainfer_gates
from repro.baselines.prune import PrunedModelWrapper, magnitude_prune
from repro.baselines.raee import RAEEDatabase, RAEEEngine, build_raee_database
from repro.config import SimDims
from repro.hardware.ledger import Event
from repro.model.draft import TreeDrafter
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM


@pytest.fixture(scope="module")
def lm():
    return SyntheticLayeredLM(get_profile("llama2-7b"), SimDims(), seed=21)


def fresh(seed=21):
    return SyntheticLayeredLM(get_profile("llama2-7b"), SimDims(), seed=seed)


class TestDenseEngine:
    def test_full_depth_accounting(self, lm):
        engine = DenseEngine(fresh())
        result = engine.generate([1, 2, 3], 20)
        assert result.ledger.calls(Event.DECODER_LAYER) == 20 * 32
        assert result.ledger.calls(Event.LM_HEAD_FULL) == 20
        assert all(e == 31 for e in result.exit_layers)

    def test_teacher_forced_perplexity(self):
        engine = DenseEngine(fresh())
        refs = [9, 9, 9, 9]
        result = engine.generate([4, 4, 4], 0, force_tokens=refs)
        assert len(result.logprobs) == 4
        assert result.perplexity > 1.0


class TestLinearSVM:
    def test_learns_separable(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((400, 3))
        y = (x @ np.array([2.0, -1.0, 0.5]) > 0).astype(float)
        svm = LinearSVM(3)
        acc = svm.fit(x, y, epochs=15)
        assert acc > 0.9

    def test_decision_sign_matches_predict(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((100, 2))
        y = (x[:, 0] > 0).astype(float)
        svm = LinearSVM(2)
        svm.fit(x, y, epochs=10)
        assert np.array_equal(svm.predict(x), svm.decision(x) > 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearSVM(2).fit(np.zeros((0, 2)), np.zeros(0))


class TestAdaInfer:
    def test_features_shape_and_range(self, lm):
        logits = np.random.default_rng(0).standard_normal(512)
        feats = adainfer_features(logits)
        assert feats.shape == (3,)
        assert 0 <= feats[0] <= 1       # top probability
        assert feats[1] >= 0            # top-2 gap
        assert 0 <= feats[2] <= 1       # normalised entropy

    def test_engine_exits_early_and_pays_full_heads(self, lm):
        gates = train_adainfer_gates(fresh(), [[1, 2, 3], [4, 5, 6]],
                                     tokens_per_prompt=20)
        engine = AdaInferEngine(fresh(seed=22), gates)
        result = engine.generate([7, 7, 7], 40)
        assert result.early_exit_rate > 0.2
        # Structural cost: at least one full head per evaluated layer.
        assert result.ledger.calls(Event.LM_HEAD_FULL) > 40

    def test_unverified_exits_diverge_from_dense(self, lm):
        """AdaInfer's accuracy drop mechanism: no verification."""
        gates = train_adainfer_gates(fresh(), [[1, 2, 3]], tokens_per_prompt=25)
        engine = AdaInferEngine(fresh(seed=23), gates)
        result = engine.generate([8, 8, 8], 60)
        dense = DenseEngine(fresh(seed=23)).generate([8, 8, 8], 60)
        agreement = np.mean([a == b for a, b in zip(result.tokens, dense.tokens)])
        assert agreement < 1.0


class TestRAEE:
    def test_database_query(self):
        db = RAEEDatabase(dim=4)
        rng = np.random.default_rng(0)
        for layer in (10, 10, 11, 20):
            db.add(rng.standard_normal(4), layer)
        predicted, confidence = db.query(db._keys[0], k=2)
        assert 0 < confidence <= 1
        assert 5 <= predicted <= 21

    def test_query_empty_raises(self):
        with pytest.raises(RuntimeError):
            RAEEDatabase(dim=2).query(np.zeros(2))

    def test_engine_exits_at_retrieved_depth(self, lm):
        db = build_raee_database(fresh(), [[1, 2, 3]], tokens_per_prompt=20)
        engine = RAEEEngine(fresh(seed=24), db)
        result = engine.generate([2, 3, 4], 30)
        assert result.ledger.calls(Event.RETRIEVAL) == 30
        assert min(result.exit_layers) >= engine.min_exit_layer

    def test_nbytes_grows(self):
        db = RAEEDatabase(dim=8)
        db.add(np.zeros(8), 1)
        one = db.nbytes
        db.add(np.zeros(8), 2)
        assert db.nbytes > one


class TestEagle:
    def test_emits_requested_tokens(self, lm):
        drafter = TreeDrafter(lm.oracle, depth=4, level_hit_rate=0.8)
        engine = EagleEngine(fresh(seed=25), drafter)
        result = engine.generate([5, 9, 2], 50)
        assert len(result.tokens) == 50
        assert result.tokens_per_iteration > 1.0
        assert result.ledger.steps == len(result.iterations)

    def test_verify_layers_full_depth(self, lm):
        drafter = TreeDrafter(lm.oracle, depth=3, level_hit_rate=0.8)
        engine = EagleEngine(fresh(seed=26), drafter)
        result = engine.generate([5, 9, 2], 20)
        assert result.ledger.calls(Event.TREE_VERIFY_LAYER) == 32 * len(result.iterations)


class TestPruning:
    def test_magnitude_prune_exact_sparsity(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((16, 16))
        pruned, realised = magnitude_prune(w, 0.5)
        assert realised == pytest.approx(0.5, abs=0.01)
        assert np.count_nonzero(pruned) == pytest.approx(128, abs=2)

    def test_prune_keeps_largest(self):
        w = np.array([[0.1, 5.0], [-4.0, 0.2]])
        pruned, _ = magnitude_prune(w, 0.5)
        assert pruned[0, 1] == 5.0 and pruned[1, 0] == -4.0
        assert pruned[0, 0] == 0.0 and pruned[1, 1] == 0.0

    def test_zero_sparsity_identity(self):
        w = np.ones((3, 3))
        pruned, realised = magnitude_prune(w, 0.0)
        assert realised == 0.0
        assert np.array_equal(pruned, w)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            magnitude_prune(np.ones((2, 2)), 1.0)

    def test_wrapper_flips_some_answers(self, lm):
        wrapper = PrunedModelWrapper(fresh(seed=27), flip_rate=0.5)
        base = fresh(seed=27)
        flips = 0
        sw, sb = wrapper.start([3, 3, 3]), base.start([3, 3, 3])
        for _ in range(30):
            wrapper.begin_step(sw)
            base.begin_step(sb)
            flips += sw.plan.target != sb.plan.target
            token = sb.plan.target
            wrapper.commit(sw, token, 31)
            base.commit(sb, token, 31)
        assert flips > 5
