"""Tests for the autograd engine: numerical gradient checks and semantics."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, cross_entropy, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    g = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = fn()
        flat[i] = old - eps
        down = fn()
        flat[i] = old
        g[i] = (up - down) / (2 * eps)
    return grad


def check_op(op, shape_a, shape_b=None, seed=0):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.standard_normal(shape_a) * 0.5 + 1.5, requires_grad=True)
    tensors = [a]
    if shape_b is not None:
        b = Tensor(rng.standard_normal(shape_b) * 0.5 + 1.5, requires_grad=True)
        tensors.append(b)
    out = op(*tensors)
    loss = (out * out).sum()
    loss.backward()
    for t in tensors:
        num = numerical_grad(lambda: float((op(*tensors).data ** 2).sum()), t.data)
        assert np.allclose(t.grad, num, atol=1e-4), f"grad mismatch for {op}"


class TestElementwiseGrads:
    def test_add(self):
        check_op(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_op(lambda a, b: a + b, (3, 4), (4,))

    def test_mul(self):
        check_op(lambda a, b: a * b, (2, 3), (2, 3))

    def test_mul_broadcast_scalar_axis(self):
        check_op(lambda a, b: a * b, (2, 3), (2, 1))

    def test_sub_div(self):
        check_op(lambda a, b: (a - b) / (b * b), (2, 2), (2, 2))

    def test_pow(self):
        check_op(lambda a: a ** 3.0, (4,))

    def test_exp_log(self):
        check_op(lambda a: (a.exp() + 1.0).log(), (3,))

    def test_tanh(self):
        check_op(lambda a: a.tanh(), (5,))

    def test_relu(self):
        check_op(lambda a: a.relu(), (6,))

    def test_sigmoid(self):
        check_op(lambda a: a.sigmoid(), (4,))

    def test_silu(self):
        check_op(lambda a: a.silu(), (4,))


class TestMatmulAndShapes:
    def test_matmul(self):
        check_op(lambda a, b: a @ b, (3, 4), (4, 2))

    def test_batched_matmul(self):
        check_op(lambda a, b: a @ b, (2, 3, 4), (2, 4, 2))

    def test_reshape(self):
        check_op(lambda a: a.reshape(6), (2, 3))

    def test_transpose(self):
        check_op(lambda a: a.transpose(1, 0), (2, 3))

    def test_sum_axis(self):
        check_op(lambda a: a.sum(axis=0), (3, 4))

    def test_mean_keepdims(self):
        check_op(lambda a: a.mean(axis=-1, keepdims=True), (3, 4))

    def test_take_rows(self):
        idx = np.array([0, 2, 2])
        check_op(lambda a: a.take_rows(idx), (4, 3))


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((3, 5)))
        assert np.allclose(x.softmax().data.sum(axis=-1), 1.0)

    def test_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((4, 6))
        targets = np.array([0, 3, 5, 2])
        t = Tensor(logits, requires_grad=True)
        loss = cross_entropy(t, targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(4), targets].mean()
        assert loss.item() == pytest.approx(expected)

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((3, 5))
        targets = np.array([1, 4, 0])
        t = Tensor(logits, requires_grad=True)
        cross_entropy(t, targets).backward()
        # d/dlogits = (softmax - onehot) / N
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        onehot = np.zeros_like(probs)
        onehot[np.arange(3), targets] = 1
        assert np.allclose(t.grad, (probs - onehot) / 3, atol=1e-8)

    def test_cross_entropy_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(5)), np.array([0]))


class TestEngineSemantics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        loss = (t * 3) + (t * 4)
        loss.backward()
        assert t.grad[0] == pytest.approx(7.0)

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = (t * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        t = Tensor(np.ones(1), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_topological_order(self):
        t = Tensor(np.array([1.5]), requires_grad=True)
        a = t * 2
        b = t * 3
        ((a + b) * a).sum().backward()
        # f = (2t + 3t) * 2t = 10 t^2, df/dt = 20 t
        assert t.grad[0] == pytest.approx(30.0)
