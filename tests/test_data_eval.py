"""Tests for workloads (tokenizer, corpus, datasets) and the eval harness."""

import math

import numpy as np
import pytest

from repro.baselines import DenseEngine
from repro.data.corpus import generate_corpus, generate_prompts, sample_reference
from repro.data.datasets import (
    CALIBRATION,
    DATASETS,
    get_dataset,
    make_items,
    match_rate_for_ppl,
)
from repro.data.tokenizer import SyntheticTokenizer
from repro.eval.harness import build_rig, make_model, run_items, trained_assets
from repro.eval.metrics import accuracy_percent, answer_matches, normalized_layers
from repro.eval.reporting import ExperimentResult
from repro.model.oracle import NGramOracle
from repro.utils.tables import render_series, render_table


class TestTokenizer:
    def test_roundtrip_in_vocab(self):
        tok = SyntheticTokenizer(128)
        text = tok.decode([10, 20, 30])
        assert tok.encode(text) == [10, 20, 30]
        assert tok.roundtrips(text)

    def test_oov_stable(self):
        tok = SyntheticTokenizer(128)
        a = tok.word_to_id("banana")
        assert a == tok.word_to_id("banana")
        assert 0 <= a < 128

    def test_specials(self):
        tok = SyntheticTokenizer(64)
        assert tok.id_to_word(tok.bos_id) == "<bos>"
        assert tok.encode("hi", add_bos=True)[0] == tok.bos_id

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            SyntheticTokenizer(4)


class TestCorpus:
    def test_prompts_deterministic_and_in_range(self):
        a = generate_prompts(5, 100, seed=3)
        b = generate_prompts(5, 100, seed=3)
        assert a == b
        assert all(0 <= t < 100 for p in a for t in p)

    def test_corpus_shape(self):
        oracle = NGramOracle(64, seed=0)
        corpus = generate_corpus(oracle, 4, 20, seed=1)
        assert corpus.shape == (4, 20)

    def test_reference_match_rate(self):
        oracle = NGramOracle(256, seed=1)
        prompt = [3, 4, 5]
        ref = sample_reference(oracle, prompt, 400, match_rate=0.7, seed=0)
        ctx = list(prompt)
        hits = 0
        for tok in ref:
            hits += tok == oracle.target(ctx)
            ctx.append(tok)
        assert 0.6 < hits / len(ref) < 0.8

    def test_reference_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            sample_reference(NGramOracle(64), [1], 4, match_rate=2.0)


class TestDatasets:
    def test_registry_has_all_nine(self):
        assert len(DATASETS) == 9

    def test_match_rate_monotone_in_ppl(self):
        assert match_rate_for_ppl(5.0) > match_rate_for_ppl(10.0)

    def test_calibration_covers_table4(self):
        for model in ("llama2-7b", "llama2-13b", "llama2-70b"):
            for ds in ("mmlu", "csqa", "sst2", "gsm8k", "sum", "mt_bench", "alpaca"):
                assert (model, "dense", ds) in CALIBRATION

    def test_classification_items(self):
        oracle = NGramOracle(512, seed=0)
        spec = get_dataset("mmlu")
        items = make_items(spec, oracle, "llama2-7b", n_items=20, seed=0)
        for item in items:
            assert item.gold is not None and item.script is not None
            assert len(item.script) == spec.reasoning_tokens + len(item.gold)
            assert all(g in item.options for g in item.gold)

    def test_planted_accuracy_near_calibration(self):
        oracle = NGramOracle(512, seed=0)
        spec = get_dataset("sst2")  # calibrated at 86.24 for 7B dense
        items = make_items(spec, oracle, "llama2-7b", n_items=300, seed=1)
        planted = np.mean([
            item.script[item.answer_start:] == item.gold for item in items
        ])
        assert abs(planted * 100 - 86.24) < 6.0

    def test_generation_items(self):
        oracle = NGramOracle(512, seed=0)
        spec = get_dataset("sum")
        items = make_items(spec, oracle, "llama2-7b", n_items=5, seed=0)
        for item in items:
            assert item.reference is not None
            assert len(item.reference) == spec.gen_len

    def test_items_deterministic(self):
        oracle = NGramOracle(512, seed=0)
        spec = get_dataset("qa")
        a = make_items(spec, oracle, "llama2-7b", n_items=3, seed=5)
        b = make_items(spec, oracle, "llama2-7b", n_items=3, seed=5)
        assert [i.prompt for i in a] == [i.prompt for i in b]

    def test_profile_modifiers_applied(self):
        from repro.model.profiles import get_profile

        base = get_profile("llama2-7b")
        adjusted = get_dataset("gsm8k").apply_to_profile(base)
        assert adjusted.peak_frac > base.peak_frac
        assert adjusted.transient_rate > base.transient_rate


class TestMetrics:
    def test_answer_matches(self):
        assert answer_matches([1, 2, 3, 4], gold=[3, 4], answer_start=2)
        assert not answer_matches([1, 2, 3], gold=[9], answer_start=2)
        assert not answer_matches([1], gold=[2, 3], answer_start=0)

    def test_accuracy_percent(self):
        assert accuracy_percent([True, False]) == 50.0
        assert math.isnan(accuracy_percent([]))

    def test_normalized_layers(self):
        assert normalized_layers(20, 25) == pytest.approx(80.0)


class TestHarness:
    def test_trained_assets_cached(self):
        a = trained_assets("llama2-7b", train_prompts=3, train_tokens=15,
                           epochs=4, predictor_hidden=32)
        b = trained_assets("llama2-7b", train_prompts=3, train_tokens=15,
                           epochs=4, predictor_hidden=32)
        assert a[0] is b[0]

    def test_run_items_classification(self):
        rig = build_rig("llama2-7b", train_prompts=3, train_tokens=15,
                        epochs=4, predictor_hidden=32)
        spec = get_dataset("mmlu")
        items = make_items(spec, rig.model.oracle, "llama2-7b", n_items=6)
        run = run_items(lambda: DenseEngine(rig.fresh_model()), spec, items,
                        n_layers=rig.model.n_layers)
        assert 0 <= run.accuracy <= 100
        assert run.avg_layers == pytest.approx(32.0)
        # The dense engine proposes no draft tokens, so its theoretical
        # earliest depth is full depth by construction.
        assert run.theoretical_layers == pytest.approx(32.0)
        specee = run_items(lambda: rig.specee_engine(), spec, items,
                           n_layers=rig.model.n_layers)
        assert specee.theoretical_layers < 32.0
        assert specee.avg_layers < 32.0

    def test_run_items_generation_ppl(self):
        rig = build_rig("llama2-7b", train_prompts=3, train_tokens=15,
                        epochs=4, predictor_hidden=32)
        spec = get_dataset("mt_bench")
        items = make_items(spec, rig.model.oracle, "llama2-7b", n_items=3)
        run = run_items(lambda: DenseEngine(rig.fresh_model()), spec, items,
                        n_layers=rig.model.n_layers)
        assert run.ppl > 1.0

    def test_make_model_dataset_profile(self):
        base = make_model("llama2-7b")
        harder = make_model("llama2-7b", get_dataset("gsm8k"))
        assert harder.profile.peak_frac > base.profile.peak_frac


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "|" in lines[0]

    def test_render_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_series(self):
        text = render_series({"y": [1.0, 2.0]}, "x", [0, 1], title="t")
        assert "t" in text and "y" in text

    def test_experiment_result_metric(self):
        r = ExperimentResult("e", "t", headline={"a": 1.0})
        assert r.metric("a") == 1.0
        with pytest.raises(KeyError):
            r.metric("missing")

    def test_experiment_render_contains_tables(self):
        r = ExperimentResult("e", "t")
        r.add_table("tab", ["x"], [[1]])
        r.add_series("ser", "x", [0], {"y": [2.0]})
        out = r.render()
        assert "tab" in out and "ser" in out
