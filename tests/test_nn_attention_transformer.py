"""Tests for the KV cache, causal attention and transformer stacks."""

import numpy as np
import pytest

from repro.nn.attention import CausalSelfAttention, KVCache
from repro.nn.autograd import cross_entropy
from repro.nn.optim import Adam
from repro.nn.transformer import (
    TinyTransformerLM,
    TrainableTransformerLM,
    TransformerConfig,
)

CFG = TransformerConfig(vocab_size=48, dim=32, n_layers=3, n_heads=4,
                        intermediate_dim=48, max_positions=64)


class TestKVCache:
    def test_append_and_view(self):
        cache = KVCache(2, 2, 4, 8)
        k = np.ones((2, 3, 4))
        cache.append(0, k, k * 2)
        keys, values = cache.view(0)
        assert keys.shape == (2, 3, 4)
        assert np.allclose(values, 2.0)
        assert cache.length(1) == 0

    def test_overflow_raises(self):
        cache = KVCache(1, 1, 2, 2)
        cache.append(0, np.zeros((1, 2, 2)), np.zeros((1, 2, 2)))
        with pytest.raises(ValueError):
            cache.append(0, np.zeros((1, 1, 2)), np.zeros((1, 1, 2)))

    def test_truncate(self):
        cache = KVCache(1, 1, 2, 8)
        cache.append(0, np.ones((1, 4, 2)), np.ones((1, 4, 2)))
        cache.truncate(0, 2)
        assert cache.length(0) == 2
        with pytest.raises(ValueError):
            cache.truncate(0, 5)

    def test_nbytes_positive(self):
        assert KVCache(2, 2, 4, 8).nbytes() > 0

    def test_geometric_growth_preserves_contents(self):
        cache = KVCache(1, 1, 2, 64, initial_tokens=2)
        assert cache.capacity == 2
        for step in range(40):
            kv = np.full((1, 1, 2), float(step))
            cache.append(0, kv, kv)
        assert cache.length(0) == 40
        assert 40 <= cache.capacity <= 64
        keys, _ = cache.view(0)
        assert np.array_equal(keys[0, :, 0], np.arange(40, dtype=float))

    def test_growth_never_exceeds_max_tokens(self):
        cache = KVCache(1, 1, 2, 5, initial_tokens=2)
        cache.append(0, np.zeros((1, 5, 2)), np.zeros((1, 5, 2)))
        assert cache.capacity == 5
        with pytest.raises(ValueError):
            cache.append(0, np.zeros((1, 1, 2)), np.zeros((1, 1, 2)))

    def test_small_allocation_up_front(self):
        """The whole point of growth: a long-budget cache starts small."""
        small = KVCache(4, 4, 16, 4096, initial_tokens=32)
        assert small.nbytes() < KVCache(4, 4, 16, 4096, initial_tokens=4096).nbytes() / 16


class TestCausalAttention:
    def test_incremental_equals_full(self):
        """The load-bearing property: decoding token-by-token with the cache
        must reproduce the full-sequence forward bit-for-bit."""
        rng = np.random.default_rng(0)
        attn = CausalSelfAttention(16, 4, rng, max_positions=32)
        x = rng.standard_normal((6, 16))
        full_cache = KVCache(1, 4, 4, 32)
        full = attn.forward(x, 0, full_cache, np.arange(6))
        inc_cache = KVCache(1, 4, 4, 32)
        outs = [attn.forward(x[i : i + 1], 0, inc_cache, np.array([i])) for i in range(6)]
        assert np.allclose(np.concatenate(outs), full, atol=1e-10)

    def test_causality(self):
        """Changing a future token must not affect earlier outputs."""
        rng = np.random.default_rng(1)
        attn = CausalSelfAttention(16, 4, rng, max_positions=32)
        x = rng.standard_normal((5, 16))
        out_a = attn.forward(x, 0, KVCache(1, 4, 4, 32), np.arange(5))
        x2 = x.copy()
        x2[4] += 10.0
        out_b = attn.forward(x2, 0, KVCache(1, 4, 4, 32), np.arange(5))
        assert np.allclose(out_a[:4], out_b[:4])
        assert not np.allclose(out_a[4], out_b[4])

    def test_gqa_head_grouping(self):
        rng = np.random.default_rng(2)
        attn = CausalSelfAttention(16, 4, rng, n_kv_heads=2, max_positions=16)
        cache = KVCache(1, 2, 4, 16)
        out = attn.forward(rng.standard_normal((3, 16)), 0, cache, np.arange(3))
        assert out.shape == (3, 16)
        assert cache.view(0)[0].shape == (2, 3, 4)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(15, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            CausalSelfAttention(16, 4, np.random.default_rng(0), n_kv_heads=3)

    @pytest.mark.parametrize("lens", [
        [4, 1, 7],        # all-distinct lengths: per-sequence gather branch
        [5, 5, 5],        # one equal-length group: stacked GQA matmul branch
        [3, 6, 3, 6, 2],  # mixed groups and a singleton
    ])
    def test_decode_batch_matches_per_sequence_forward(self, lens):
        """Batched decode over ragged caches equals the per-sequence path —
        for the singleton gather and the same-length stacked branch alike,
        with grouped-query heads (group > 1) in play."""
        rng = np.random.default_rng(3)
        attn = CausalSelfAttention(16, 4, rng, n_kv_heads=2, max_positions=64)
        caches_a = [KVCache(1, 2, 4, 64) for _ in lens]
        caches_b = [KVCache(1, 2, 4, 64) for _ in lens]
        for i, n in enumerate(lens):
            x = rng.standard_normal((n, 16))
            attn.forward(x, 0, caches_a[i], np.arange(n))
            attn.forward(x, 0, caches_b[i], np.arange(n))
        xb = rng.standard_normal((len(lens), 16))
        batch = attn.decode_batch(xb, 0, caches_a, np.asarray(lens))
        single = np.vstack([
            attn.forward(xb[i : i + 1], 0, caches_b[i], np.asarray([lens[i]]))
            for i in range(len(lens))
        ])
        assert np.allclose(batch, single, atol=1e-12)
        for ca, cb in zip(caches_a, caches_b):
            ka, va = ca.view(0)
            kb, vb = cb.view(0)
            assert np.allclose(ka, kb, atol=1e-12) and np.allclose(va, vb, atol=1e-12)

    def test_stacked_qkv_layout_cached(self):
        rng = np.random.default_rng(4)
        attn = CausalSelfAttention(16, 4, rng, max_positions=16)
        assert attn.wqkv.flags["C_CONTIGUOUS"]
        assert np.array_equal(
            attn.wqkv, np.concatenate([attn.wq, attn.wk, attn.wv], axis=1))


class TestTinyTransformer:
    def test_layer_stepping_equals_forward_all(self):
        lm = TinyTransformerLM(CFG, seed=0)
        tokens = np.array([1, 5, 9, 2])
        c1 = lm.new_cache(16)
        full = lm.forward_all(tokens, c1, np.arange(4))
        c2 = lm.new_cache(16)
        h = lm.embed(tokens)
        for layer in range(CFG.n_layers):
            h = lm.layer_forward(h, layer, c2, np.arange(4))
        assert np.allclose(full, h, atol=1e-12)

    def test_lm_head_slice_matches_full(self):
        lm = TinyTransformerLM(CFG, seed=0)
        h = np.random.default_rng(0).standard_normal(CFG.dim)
        ids = np.array([3, 7, 11])
        assert np.allclose(lm.lm_head_slice(h, ids), lm.lm_head(h)[ids])

    def test_deterministic_by_seed(self):
        a = TinyTransformerLM(CFG, seed=5)
        b = TinyTransformerLM(CFG, seed=5)
        assert np.array_equal(a.embedding, b.embedding)


class TestTrainableTransformer:
    def test_loss_decreases(self):
        cfg = TransformerConfig(vocab_size=24, dim=16, n_layers=1, n_heads=2,
                                intermediate_dim=24, max_positions=16)
        lm = TrainableTransformerLM(cfg, seed=0)
        # Learnable pattern: next token = (token + 1) % vocab.
        seq = (np.arange(9) * 1) % cfg.vocab_size
        batch = np.stack([seq, (seq + 3) % cfg.vocab_size])
        inputs, targets = batch[:, :-1], batch[:, 1:]
        opt = Adam(lm.parameters(), lr=3e-2)
        losses = []
        for _ in range(25):
            opt.zero_grad()
            logits = lm(inputs)
            loss = cross_entropy(logits.reshape(-1, cfg.vocab_size), targets.reshape(-1))
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5

    def test_rejects_too_long_sequence(self):
        cfg = TransformerConfig(vocab_size=8, dim=8, n_layers=1, n_heads=2,
                                intermediate_dim=8, max_positions=4)
        lm = TrainableTransformerLM(cfg)
        with pytest.raises(ValueError):
            lm(np.zeros((1, 5), dtype=int))
