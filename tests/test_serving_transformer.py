"""Real-transformer serving: the batched decode fast path must be
token-identical to the sequential per-sequence loop — across ragged prompt
lengths, per-sequence early exits with KV hidden-state propagation, and
sequences retiring mid-batch — while measuring wall-clock throughput."""

import numpy as np
import pytest

from repro.cli import main
from repro.config import SpecEEConfig, get_model_spec
from repro.distributed.cluster import make_cluster
from repro.hardware.ledger import Event
from repro.nn.attention import KVCache
from repro.serving import Request

# Unverified-exit ablation with a permissive threshold: the untrained-oracle
# draft rarely survives verification on random weights, so this config is how
# the tests exercise *frequent* per-sequence early exits deterministically.
EXITY_CFG = SpecEEConfig(exit_threshold=0.35, min_exit_layer=1,
                         scheduler="all", verify_on_exit=False)


@pytest.fixture
def rig(small_transformer_rig):
    """Alias onto the shared session-scoped rig (see tests/conftest.py)."""
    return small_transformer_rig


def ragged_requests():
    """Ragged prompt lengths AND ragged token budgets (mid-batch retirement)."""
    lengths = [6, 3, 9, 4, 7, 5]
    budgets = [10, 4, 12, 7, 5, 9]
    return [Request(i, [(i * 11 + j) % 128 + 1 for j in range(n)], b)
            for i, (n, b) in enumerate(zip(lengths, budgets))]


def run_serving(rig, batched, config=None, capacity=4):
    serving = rig.serving_engine(batch_capacity=capacity, kv_blocks=256,
                                 block_size=8, batched=batched, config=config)
    return serving.run(ragged_requests())


def burst_requests(n=4, tokens=10):
    """Same-instant arrivals with enough decode KV demand that an 8-block
    pool (see ``tight_async``) must preempt to make progress."""
    return [Request(i, [(i * 7 + j) % 128 + 1 for j in range(3 + i)], tokens)
            for i in range(n)]


def tight_async(rig, **overrides):
    """Async engine whose KV pool is far below the batch's worst case."""
    kwargs = dict(batch_capacity=4, kv_blocks=8, block_size=4,
                  admission="optimistic", preemption="auto",
                  chunk_prefill_tokens=8, config=EXITY_CFG)
    kwargs.update(overrides)
    return rig.async_serving_engine(**kwargs)


class TestBatchedIdentity:
    def test_batched_tokens_identical_to_sequential(self, rig):
        batched = run_serving(rig, batched=True)
        sequential = run_serving(rig, batched=False)
        assert batched.batched_decode and not sequential.batched_decode
        assert {i: r.tokens for i, r in batched.results.items()} == \
               {i: r.tokens for i, r in sequential.results.items()}
        assert {i: r.exit_layers for i, r in batched.results.items()} == \
               {i: r.exit_layers for i, r in sequential.results.items()}

    def test_identity_with_frequent_early_exits(self, rig):
        batched = run_serving(rig, batched=True, config=EXITY_CFG)
        sequential = run_serving(rig, batched=False, config=EXITY_CFG)
        n_early = sum(sum(r.early_exit for r in res.records)
                      for res in batched.results.values())
        assert n_early >= 5, "config must actually trigger early exits"
        exits = {l for res in batched.results.values() for l in res.exit_layers}
        assert len(exits) > 1, "exits must be ragged across the layer range"
        assert {i: r.tokens for i, r in batched.results.items()} == \
               {i: r.tokens for i, r in sequential.results.items()}
        assert {i: r.exit_layers for i, r in batched.results.items()} == \
               {i: r.exit_layers for i, r in sequential.results.items()}

    def test_identity_across_capacities(self, rig):
        """Admission order changes with capacity, tokens must not."""
        small = run_serving(rig, batched=True, config=EXITY_CFG, capacity=2)
        large = run_serving(rig, batched=True, config=EXITY_CFG, capacity=6)
        assert {i: r.tokens for i, r in small.results.items()} == \
               {i: r.tokens for i, r in large.results.items()}

    def test_ledgers_identical_to_sequential(self, rig):
        batched = run_serving(rig, batched=True, config=EXITY_CFG)
        sequential = run_serving(rig, batched=False, config=EXITY_CFG)
        for kind in (Event.DECODER_LAYER, Event.LM_HEAD_SLICE, Event.PREDICTOR,
                     Event.LM_HEAD_FULL, Event.KV_FILL):
            assert batched.sequential_ledger.calls(kind) == \
                   sequential.sequential_ledger.calls(kind), kind

    def test_early_exit_kv_propagation_keeps_caches_rectangular(self, rig):
        """Early exits must leave every (sequence, layer) cache rectangular:
        hidden-state propagation fills the skipped layers' KV slots."""
        engine = rig.specee_engine("all", EXITY_CFG)
        factories = [rig.make_scheduler("all", EXITY_CFG) for _ in range(3)]
        pairs = [engine.prefill([(i * 5 + j) % 128 + 1 for j in range(3 + i)])
                 for i in range(3)]
        states = [s for s, _ in pairs]
        results = [r for _, r in pairs]
        for _ in range(6):
            engine.step_batch(states, results, factories)
        assert any(r.early_exit for res in results for r in res.records)
        for state in states:
            for layer in range(engine.model.n_layers):
                assert state.cache.length(layer) == len(state.context)


class TestWallClockReport:
    def test_measured_throughput_present(self, rig):
        report = run_serving(rig, batched=True)
        assert report.wall_time_s > 0.0
        assert np.isfinite(report.measured_tps) and report.measured_tps > 0.0

    def test_modelled_numbers_still_priced(self, rig):
        report = run_serving(rig, batched=True)
        priced = report.priced_speedup(get_model_spec("llama2-7b"),
                                       "a100-80g", "vllm")
        assert priced["serving_tps"] > 0 and priced["sequential_tps"] > 0

    def test_batch_decoder_layer_events_emitted(self, rig):
        """The serving ledger still rebatches per-tick layer runs."""
        report = run_serving(rig, batched=True)
        assert report.serving_ledger.calls(Event.BATCH_DECODER_LAYER) > 0
        assert report.serving_ledger.units(Event.BATCH_DECODER_LAYER) == \
               report.sequential_ledger.calls(Event.DECODER_LAYER)


class TestSchedulerIsolation:
    def test_per_sequence_online_history_isolated(self, rig):
        """Two-level/online schedulers keep per-sequence exit history, so the
        batched run must also match sequential under an online scheduler."""
        cfg = SpecEEConfig(exit_threshold=0.35, min_exit_layer=1,
                           scheduler="online", verify_on_exit=False)
        reports = {}
        for batched in (True, False):
            serving = rig.serving_engine(scheduler_kind="online",
                                         batch_capacity=4, kv_blocks=256,
                                         block_size=8, batched=batched,
                                         config=cfg)
            reports[batched] = serving.run(ragged_requests())
        assert {i: r.tokens for i, r in reports[True].results.items()} == \
               {i: r.tokens for i, r in reports[False].results.items()}


class TestRealKVPreemption:
    """The real-tensor side of preemption: :class:`KVCache` swap blobs and
    the :class:`LayeredLM` preemption hooks the async engine drives."""

    def test_kv_cache_swap_roundtrip_bit_exact(self):
        cache = KVCache(n_layers=2, n_kv_heads=2, head_dim=4, max_tokens=64,
                        initial_tokens=4)
        rng = np.random.default_rng(0)
        kept = []
        for layer in range(2):
            k, v = rng.normal(size=(2, 7, 4)), rng.normal(size=(2, 7, 4))
            cache.append(layer, k, v)
            kept.append((k.copy(), v.copy()))
        blob = cache.swap_out()
        # Eviction really freed the device side: back to the initial alloc.
        assert cache.length(0) == 0 and cache.length(1) == 0
        assert cache.capacity == 4
        cache.swap_in(blob)
        for layer, (k, v) in enumerate(kept):
            assert np.array_equal(cache.view(layer)[0], k)
            assert np.array_equal(cache.view(layer)[1], v)

    def _decode(self, rig, interrupt, mode):
        """8 decode steps; optionally preempt-and-resume after step 3."""
        engine = rig.specee_engine(config=EXITY_CFG)
        state, result = engine.prefill([5, 9, 2, 44, 17])
        for step in range(8):
            if step == 3 and interrupt:
                if mode == "swap":
                    rig.model.swap_out_state(state)
                    assert state.host_kv is not None
                    assert state.cache.length(0) == 0  # device side evicted
                    rig.model.swap_in_state(state)
                else:
                    rig.model.drop_state_kv(state)
                    rig.model.recompute_state(state)
            engine.step(state, result)
        return result

    def test_mid_decode_swap_roundtrip_token_identical(self, rig):
        ref = self._decode(rig, interrupt=False, mode="swap")
        out = self._decode(rig, interrupt=True, mode="swap")
        assert out.tokens == ref.tokens and out.exit_layers == ref.exit_layers

    def test_mid_decode_recompute_token_identical(self, rig):
        ref = self._decode(rig, interrupt=False, mode="recompute")
        out = self._decode(rig, interrupt=True, mode="recompute")
        assert out.tokens == ref.tokens and out.exit_layers == ref.exit_layers

    def test_swap_in_without_swap_out_raises(self, rig):
        engine = rig.specee_engine(config=EXITY_CFG)
        state, _ = engine.prefill([5, 9, 2])
        with pytest.raises(RuntimeError, match="swap_out_state"):
            rig.model.swap_in_state(state)


class TestAsyncTransformer:
    """The async/trace engine driving the real transformer: preempted then
    resumed sequences must be token-identical to undisturbed sync serving."""

    def reference(self, rig, requests):
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=256,
                                     block_size=8, config=EXITY_CFG)
        return serving.run(requests)

    @pytest.mark.parametrize("mode", ["swap", "recompute", "auto"])
    def test_preempted_resume_token_identical(self, rig, mode):
        requests = burst_requests()
        ref = self.reference(rig, burst_requests())
        report = tight_async(rig, preemption=mode).run(requests)
        assert report.preemptions > 0, "config must actually exercise preemption"
        for request in requests:
            result = report.results[request.request_id]
            assert result.tokens == ref.results[request.request_id].tokens
            assert result.exit_layers == ref.results[request.request_id].exit_layers
        if mode == "swap":
            assert report.swaps == report.preemptions
            assert report.serving_ledger.units(Event.KV_SWAP) > 0
        if mode == "recompute":
            assert report.recomputes == report.preemptions

    def test_async_matches_sync_without_pressure(self, rig):
        ref = run_serving(rig, batched=True, config=EXITY_CFG)
        report = rig.async_serving_engine(
            batch_capacity=4, kv_blocks=256, block_size=8,
            config=EXITY_CFG).run(ragged_requests())
        assert {i: r.tokens for i, r in report.results.items()} == \
               {i: r.tokens for i, r in ref.results.items()}

    def test_scalar_fallback_identical(self, rig):
        requests = burst_requests()
        batched = tight_async(rig, batched=True).run(requests)
        scalar = tight_async(rig, batched=False).run(requests)
        assert {i: r.tokens for i, r in batched.results.items()} == \
               {i: r.tokens for i, r in scalar.results.items()}

    def test_wall_clock_reported(self, rig):
        report = tight_async(rig).run(burst_requests())
        assert report.wall_time_s > 0.0
        assert np.isfinite(report.measured_tps) and report.measured_tps > 0.0


class TestShardedTransformer:
    """tp/pp sharding is a ledger rewrite: the sharded transformer decode
    must stay token-identical to the single-device run, sync and async."""

    def test_sync_sharded_tokens_identical(self, rig):
        single = run_serving(rig, batched=True, config=EXITY_CFG)
        serving = rig.serving_engine(
            batch_capacity=4, kv_blocks=256, block_size=8, config=EXITY_CFG,
            cluster=make_cluster("a100-80g", tp=2, pp=2))
        sharded = serving.run(ragged_requests())
        assert {i: r.tokens for i, r in sharded.results.items()} == \
               {i: r.tokens for i, r in single.results.items()}
        assert {i: r.exit_layers for i, r in sharded.results.items()} == \
               {i: r.exit_layers for i, r in single.results.items()}
        assert sharded.serving_ledger.calls(Event.ALLREDUCE) > 0

    def test_async_sharded_tokens_identical(self, rig):
        requests = ragged_requests()
        kwargs = dict(batch_capacity=4, kv_blocks=64, block_size=8,
                      config=EXITY_CFG)
        single = rig.async_serving_engine(**kwargs).run(requests)
        sharded = rig.async_serving_engine(
            cluster=make_cluster("a100-80g", tp=2, pp=2), **kwargs,
        ).run(ragged_requests())
        assert {i: r.tokens for i, r in sharded.results.items()} == \
               {i: r.tokens for i, r in single.results.items()}
        assert sharded.serving_ledger.calls(Event.PIPELINE_BUBBLE) > 0


class TestBatchedPredictorPath:
    """The vectorized speculative-head/feature/predictor tick must make the
    same exit decisions and charge the same ledgers as the python loop."""

    def run_with_flag(self, rig, flag, scheduler_kind="two_level", config=None):
        serving = rig.serving_engine(
            scheduler_kind=scheduler_kind, batch_capacity=4, kv_blocks=256,
            block_size=8, batched=True, config=config or EXITY_CFG)
        serving.engine.batched_predictors = flag
        return serving.run(ragged_requests())

    def test_decisions_identical_to_per_sequence(self, rig):
        batched = self.run_with_flag(rig, True)
        scalar = self.run_with_flag(rig, False)
        assert {i: r.tokens for i, r in batched.results.items()} == \
               {i: r.tokens for i, r in scalar.results.items()}
        assert {i: r.exit_layers for i, r in batched.results.items()} == \
               {i: r.exit_layers for i, r in scalar.results.items()}
        for kind in (Event.DECODER_LAYER, Event.LM_HEAD_SLICE, Event.PREDICTOR,
                     Event.LM_HEAD_FULL, Event.KV_FILL):
            assert batched.sequential_ledger.calls(kind) == \
                   scalar.sequential_ledger.calls(kind), kind
            assert batched.sequential_ledger.units(kind) == \
                   scalar.sequential_ledger.units(kind), kind

    def test_identical_under_verified_exits(self, rig):
        cfg = SpecEEConfig(exit_threshold=0.35, min_exit_layer=1,
                           scheduler="all", verify_on_exit=True)
        batched = self.run_with_flag(rig, True, config=cfg)
        scalar = self.run_with_flag(rig, False, config=cfg)
        assert {i: r.tokens for i, r in batched.results.items()} == \
               {i: r.tokens for i, r in scalar.results.items()}

    def test_identical_under_online_scheduler(self, rig):
        cfg = SpecEEConfig(exit_threshold=0.35, min_exit_layer=1,
                           scheduler="online", verify_on_exit=False)
        batched = self.run_with_flag(rig, True, "online", cfg)
        scalar = self.run_with_flag(rig, False, "online", cfg)
        assert {i: r.tokens for i, r in batched.results.items()} == \
               {i: r.tokens for i, r in scalar.results.items()}

    def test_default_is_batched(self, rig):
        assert rig.specee_engine(config=EXITY_CFG).batched_predictors is True


class TestTransformerServeCli:
    def test_serve_transformer_backend(self, capsys):
        assert main(["serve", "--backend", "transformer", "--requests", "3",
                     "--max-new-tokens", "6", "--batch-capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "transformer backend" in out
        assert "measured tokens/s (wall-clock)" in out
        assert "batched decode" in out

    def test_serve_transformer_sharded(self, capsys):
        assert main(["serve", "--backend", "transformer", "--tp", "2",
                     "--pp", "2", "--requests", "3", "--max-new-tokens", "6",
                     "--batch-capacity", "2", "--kv-blocks", "64",
                     "--block-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "tp=2 pp=2" in out
        assert "tiny-transformer (priced as llama2-7b)" in out

    def test_serve_transformer_trace(self, capsys):
        assert main(["serve", "--backend", "transformer", "--trace", "poisson",
                     "--requests", "4", "--max-new-tokens", "6",
                     "--kv-blocks", "64", "--block-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "async serving: tiny-transformer (priced as llama2-7b)" in out
        assert "measured tokens/s (wall-clock)" in out

    def test_synthetic_backend_unchanged_default(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.backend == "synthetic"
