"""Real-transformer serving: the batched decode fast path must be
token-identical to the sequential per-sequence loop — across ragged prompt
lengths, per-sequence early exits with KV hidden-state propagation, and
sequences retiring mid-batch — while measuring wall-clock throughput."""

import numpy as np
import pytest

from repro.cli import main
from repro.config import SpecEEConfig, get_model_spec
from repro.eval.harness import build_transformer_rig
from repro.hardware.ledger import Event
from repro.nn.transformer import TransformerConfig
from repro.serving import Request

SMALL_CFG = TransformerConfig(vocab_size=128, dim=32, n_layers=4, n_heads=4,
                              intermediate_dim=48, max_positions=256)

# Unverified-exit ablation with a permissive threshold: the untrained-oracle
# draft rarely survives verification on random weights, so this config is how
# the tests exercise *frequent* per-sequence early exits deterministically.
EXITY_CFG = SpecEEConfig(exit_threshold=0.35, min_exit_layer=1,
                         scheduler="all", verify_on_exit=False)


@pytest.fixture(scope="module")
def rig():
    return build_transformer_rig(SMALL_CFG, seed=0, max_tokens=256)


def ragged_requests():
    """Ragged prompt lengths AND ragged token budgets (mid-batch retirement)."""
    lengths = [6, 3, 9, 4, 7, 5]
    budgets = [10, 4, 12, 7, 5, 9]
    return [Request(i, [(i * 11 + j) % 128 + 1 for j in range(n)], b)
            for i, (n, b) in enumerate(zip(lengths, budgets))]


def run_serving(rig, batched, config=None, capacity=4):
    serving = rig.serving_engine(batch_capacity=capacity, kv_blocks=256,
                                 block_size=8, batched=batched, config=config)
    return serving.run(ragged_requests())


class TestBatchedIdentity:
    def test_batched_tokens_identical_to_sequential(self, rig):
        batched = run_serving(rig, batched=True)
        sequential = run_serving(rig, batched=False)
        assert batched.batched_decode and not sequential.batched_decode
        assert {i: r.tokens for i, r in batched.results.items()} == \
               {i: r.tokens for i, r in sequential.results.items()}
        assert {i: r.exit_layers for i, r in batched.results.items()} == \
               {i: r.exit_layers for i, r in sequential.results.items()}

    def test_identity_with_frequent_early_exits(self, rig):
        batched = run_serving(rig, batched=True, config=EXITY_CFG)
        sequential = run_serving(rig, batched=False, config=EXITY_CFG)
        n_early = sum(sum(r.early_exit for r in res.records)
                      for res in batched.results.values())
        assert n_early >= 5, "config must actually trigger early exits"
        exits = {l for res in batched.results.values() for l in res.exit_layers}
        assert len(exits) > 1, "exits must be ragged across the layer range"
        assert {i: r.tokens for i, r in batched.results.items()} == \
               {i: r.tokens for i, r in sequential.results.items()}
        assert {i: r.exit_layers for i, r in batched.results.items()} == \
               {i: r.exit_layers for i, r in sequential.results.items()}

    def test_identity_across_capacities(self, rig):
        """Admission order changes with capacity, tokens must not."""
        small = run_serving(rig, batched=True, config=EXITY_CFG, capacity=2)
        large = run_serving(rig, batched=True, config=EXITY_CFG, capacity=6)
        assert {i: r.tokens for i, r in small.results.items()} == \
               {i: r.tokens for i, r in large.results.items()}

    def test_ledgers_identical_to_sequential(self, rig):
        batched = run_serving(rig, batched=True, config=EXITY_CFG)
        sequential = run_serving(rig, batched=False, config=EXITY_CFG)
        for kind in (Event.DECODER_LAYER, Event.LM_HEAD_SLICE, Event.PREDICTOR,
                     Event.LM_HEAD_FULL, Event.KV_FILL):
            assert batched.sequential_ledger.calls(kind) == \
                   sequential.sequential_ledger.calls(kind), kind

    def test_early_exit_kv_propagation_keeps_caches_rectangular(self, rig):
        """Early exits must leave every (sequence, layer) cache rectangular:
        hidden-state propagation fills the skipped layers' KV slots."""
        engine = rig.specee_engine("all", EXITY_CFG)
        factories = [rig.make_scheduler("all", EXITY_CFG) for _ in range(3)]
        pairs = [engine.prefill([(i * 5 + j) % 128 + 1 for j in range(3 + i)])
                 for i in range(3)]
        states = [s for s, _ in pairs]
        results = [r for _, r in pairs]
        for _ in range(6):
            engine.step_batch(states, results, factories)
        assert any(r.early_exit for res in results for r in res.records)
        for state in states:
            for layer in range(engine.model.n_layers):
                assert state.cache.length(layer) == len(state.context)


class TestWallClockReport:
    def test_measured_throughput_present(self, rig):
        report = run_serving(rig, batched=True)
        assert report.wall_time_s > 0.0
        assert np.isfinite(report.measured_tps) and report.measured_tps > 0.0

    def test_modelled_numbers_still_priced(self, rig):
        report = run_serving(rig, batched=True)
        priced = report.priced_speedup(get_model_spec("llama2-7b"),
                                       "a100-80g", "vllm")
        assert priced["serving_tps"] > 0 and priced["sequential_tps"] > 0

    def test_batch_decoder_layer_events_emitted(self, rig):
        """The serving ledger still rebatches per-tick layer runs."""
        report = run_serving(rig, batched=True)
        assert report.serving_ledger.calls(Event.BATCH_DECODER_LAYER) > 0
        assert report.serving_ledger.units(Event.BATCH_DECODER_LAYER) == \
               report.sequential_ledger.calls(Event.DECODER_LAYER)


class TestSchedulerIsolation:
    def test_per_sequence_online_history_isolated(self, rig):
        """Two-level/online schedulers keep per-sequence exit history, so the
        batched run must also match sequential under an online scheduler."""
        cfg = SpecEEConfig(exit_threshold=0.35, min_exit_layer=1,
                           scheduler="online", verify_on_exit=False)
        reports = {}
        for batched in (True, False):
            serving = rig.serving_engine(scheduler_kind="online",
                                         batch_capacity=4, kv_blocks=256,
                                         block_size=8, batched=batched,
                                         config=cfg)
            reports[batched] = serving.run(ragged_requests())
        assert {i: r.tokens for i, r in reports[True].results.items()} == \
               {i: r.tokens for i, r in reports[False].results.items()}


class TestTransformerServeCli:
    def test_serve_transformer_backend(self, capsys):
        assert main(["serve", "--backend", "transformer", "--requests", "3",
                     "--max-new-tokens", "6", "--batch-capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "transformer backend" in out
        assert "measured tokens/s (wall-clock)" in out
        assert "batched decode" in out

    def test_transformer_rejects_sharding(self, capsys):
        assert main(["serve", "--backend", "transformer", "--tp", "2"]) == 2
        assert "--tp/--pp" in capsys.readouterr().err

    def test_transformer_rejects_trace(self, capsys):
        assert main(["serve", "--backend", "transformer",
                     "--trace", "poisson"]) == 2
        assert "closed-batch" in capsys.readouterr().err

    def test_synthetic_backend_unchanged_default(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.backend == "synthetic"
