"""Tests for feature extraction, the predictor bank, and predictor training."""

import numpy as np
import pytest

from repro.core.features import FeatureExtractor, feature_names
from repro.core.predictor import ExitPredictor, PredictorBank
from repro.core.predictor_training import (
    TrainingCorpus,
    harvest_training_corpus,
    train_predictor_bank,
)
from repro.config import SimDims
from repro.model.draft import Speculator
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM


class TestFeatureExtractor:
    def test_dimension(self):
        ex = FeatureExtractor(4)
        assert ex.feature_dim == 12
        feats = ex.extract(np.array([1.0, 2.0, 3.0, 4.0]))
        assert feats.shape == (12,)

    def test_blocks_composition(self):
        ex = FeatureExtractor(2)
        logits = np.array([2.0, 0.0])
        feats = ex.extract(logits)
        assert np.allclose(feats[:2], logits)
        assert np.isclose(feats[2] + feats[3], 1.0)  # local probs sum to 1
        assert np.allclose(feats[4:], 0.0)  # first eval: zero variation

    def test_variation_tracks_previous_eval(self):
        ex = FeatureExtractor(2)
        ex.extract(np.array([0.0, 0.0]))
        second = ex.extract(np.array([5.0, 0.0]))
        assert second[4] > 0  # token 0's local prob rose
        assert second[5] < 0

    def test_reset_clears_history(self):
        ex = FeatureExtractor(2)
        ex.extract(np.array([5.0, 0.0]))
        ex.reset()
        feats = ex.extract(np.array([0.0, 5.0]))
        assert np.allclose(feats[4:], 0.0)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            FeatureExtractor(3).extract(np.zeros(4))

    def test_batch_variant_matches_streaming(self):
        ex = FeatureExtractor(3)
        a = np.array([1.0, 2.0, 0.5])
        b = np.array([2.0, 1.0, 0.5])
        f1 = ex.extract(a)
        f2 = ex.extract(b)
        batch, probs = ex.extract_batch(np.stack([a]), None)
        assert np.allclose(batch[0], f1)
        batch2, _ = ex.extract_batch(np.stack([b]), probs)
        assert np.allclose(batch2[0], f2)

    def test_feature_names(self):
        names = feature_names(4)
        assert len(names) == 12
        assert names[0] == "logit_0" and names[-1] == "prob_variation_3"


class TestPredictorBank:
    def test_one_predictor_per_nonfinal_layer(self):
        bank = PredictorBank(8, feature_dim=12, hidden_dim=16)
        assert bank.layers() == list(range(7))
        with pytest.raises(KeyError):
            bank.probability(7, np.zeros(12))

    def test_total_params(self):
        bank = PredictorBank(33, feature_dim=12, hidden_dim=512)
        per = 12 * 512 + 512 + 512 + 1
        assert bank.total_params == 32 * per

    def test_save_load_roundtrip(self, tmp_path):
        bank = PredictorBank(4, feature_dim=6, hidden_dim=8, seed=1)
        x = np.random.default_rng(0).standard_normal(6)
        path = str(tmp_path / "bank.npz")
        bank.save(path)
        clone = PredictorBank.load(path)
        for layer in bank.layers():
            assert bank.probability(layer, x) == pytest.approx(
                clone.probability(layer, x))

    def test_state_dict_roundtrip(self):
        bank = PredictorBank(3, feature_dim=6, hidden_dim=8, seed=2)
        clone = PredictorBank.from_state_dict(bank.state_dict())
        x = np.ones(6)
        assert bank.probability(0, x) == pytest.approx(clone.probability(0, x))

    def test_probability_in_unit_interval(self):
        bank = PredictorBank(4, feature_dim=6, hidden_dim=8)
        for layer in bank.layers():
            p = bank.probability(layer, np.full(6, 100.0))
            assert 0.0 <= p <= 1.0


@pytest.fixture(scope="module")
def harvest():
    lm = SyntheticLayeredLM(get_profile("llama2-7b"), SimDims(), seed=11)
    spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
    prompts = [[i + 1, 2 * i + 1, 3] for i in range(5)]
    corpus = harvest_training_corpus(lm, spec, prompts, tokens_per_prompt=25)
    return lm, spec, corpus


class TestHarvest:
    def test_labels_reflect_saturation(self, harvest):
        """Deep layers must be predominantly positive, shallow negative."""
        _, _, corpus = harvest
        _, y_deep = corpus.layer_arrays(28)
        _, y_shallow = corpus.layer_arrays(4)
        assert y_deep.mean() > 0.6
        assert y_shallow.mean() < 0.25

    def test_sample_counts(self, harvest):
        _, _, corpus = harvest
        # 5 prompts x 25 tokens x layers [2, 30] -> 29 samples per token.
        assert corpus.n_samples == 5 * 25 * 29

    def test_subsample_ratio(self, harvest):
        _, _, corpus = harvest
        sub = corpus.subsample(0.25, seed=0)
        assert sub.n_samples < corpus.n_samples * 0.3 + 40

    def test_subsample_rejects_bad_ratio(self, harvest):
        _, _, corpus = harvest
        with pytest.raises(ValueError):
            corpus.subsample(0.0)

    def test_split_disjoint_sizes(self, harvest):
        _, _, corpus = harvest
        train, test = corpus.split(0.2, seed=0)
        assert train.n_samples + test.n_samples == corpus.n_samples


class TestTraining:
    def test_training_beats_majority_class(self, harvest):
        lm, _, corpus = harvest
        train, test = corpus.split(0.25, seed=1)
        bank = PredictorBank(lm.n_layers, feature_dim=12, hidden_dim=64, seed=0)
        metrics = train_predictor_bank(bank, train, epochs=12, test_corpus=test)
        assert metrics["test_accuracy"] > 0.75
        # Majority baseline per mid layer is well below that.
        x, y = test.layer_arrays(16)
        majority = max(y.mean(), 1 - y.mean())
        assert metrics["test_accuracy"] > majority - 0.25

    def test_trained_bank_orders_depth(self, harvest):
        """Post-saturation features must score higher than pre-saturation."""
        lm, spec, corpus = harvest
        bank = PredictorBank(lm.n_layers, feature_dim=12, hidden_dim=64, seed=0)
        train_predictor_bank(bank, corpus, epochs=12)
        layer = 16
        x, y = corpus.layer_arrays(layer)
        pos = x[y > 0.5]
        neg = x[y < 0.5]
        if len(pos) > 3 and len(neg) > 3:
            p_pos = np.mean([bank.probability(layer, f) for f in pos[:20]])
            p_neg = np.mean([bank.probability(layer, f) for f in neg[:20]])
            assert p_pos > p_neg + 0.2
